// parsched — contract macros: runtime invariant checks that survive
// Release builds.
//
// The engine's correctness story (exact event times, feasible allocations,
// no discretization error) used to lean on raw `assert`s that vanish under
// NDEBUG — i.e. in the RelWithDebInfo builds every measurement runs in.
// These macros replace them:
//
//   PARSCHED_CHECK(cond)              always-on invariant; fires in every
//   PARSCHED_CHECK(cond, "message")   build type
//   PARSCHED_CHECK_NEAR(a, b, tol)    always-on tolerant float equality
//   PARSCHED_DCHECK(cond)             debug-only (hot paths); compiled out
//   PARSCHED_DCHECK(cond, "message")  under NDEBUG like assert
//
// A failed check routes through a configurable failure policy:
//
//   ContractPolicy::kThrow  (default)  throw ContractViolation
//   ContractPolicy::kLog               record + write to stderr, continue
//   ContractPolicy::kAbort             write to stderr and std::abort()
//
// Every failure increments process-wide atomic counters (see
// contract_stats()) regardless of policy, so harnesses can assert "no
// contract fired" after a run. The header is intentionally free of
// project dependencies (it is included from util/mathx.hpp, the bottom of
// the dependency graph) and all state is lock-free atomics so the checks
// are safe under -fsanitize=thread.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace parsched {

/// Thrown by a failed PARSCHED_CHECK under ContractPolicy::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// What to do when a contract fails.
enum class ContractPolicy : int {
  kThrow = 0,  ///< throw ContractViolation (default)
  kLog = 1,    ///< count + log to stderr, then continue
  kAbort = 2,  ///< print to stderr and abort()
};

namespace check_detail {

struct ContractStats {
  std::atomic<std::uint64_t> failed{0};        ///< all failed checks
  std::atomic<std::uint64_t> debug_failed{0};  ///< failed PARSCHED_DCHECKs
};

inline ContractStats& stats() {
  static ContractStats s;
  return s;
}

inline std::atomic<int>& policy_word() {
  static std::atomic<int> p{static_cast<int>(ContractPolicy::kThrow)};
  return p;
}

}  // namespace check_detail

/// Process-wide violation counters (monotone; never reset by the library).
inline std::uint64_t contract_failures() {
  return check_detail::stats().failed.load(std::memory_order_relaxed);
}

/// Current failure policy.
inline ContractPolicy contract_policy() {
  return static_cast<ContractPolicy>(
      check_detail::policy_word().load(std::memory_order_relaxed));
}

/// Set the failure policy; returns the previous one. Tests use the RAII
/// ScopedContractPolicy below instead of calling this directly.
inline ContractPolicy set_contract_policy(ContractPolicy p) {
  return static_cast<ContractPolicy>(check_detail::policy_word().exchange(
      static_cast<int>(p), std::memory_order_relaxed));
}

/// RAII guard: swap the failure policy for a scope (tests of the kLog /
/// kAbort paths, harnesses that prefer logging over exceptions).
class ScopedContractPolicy {
 public:
  explicit ScopedContractPolicy(ContractPolicy p)
      : previous_(set_contract_policy(p)) {}
  ~ScopedContractPolicy() { set_contract_policy(previous_); }
  ScopedContractPolicy(const ScopedContractPolicy&) = delete;
  ScopedContractPolicy& operator=(const ScopedContractPolicy&) = delete;

 private:
  ContractPolicy previous_;
};

namespace check_detail {

[[noreturn]] inline void abort_with(const std::string& msg) {
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Slow path of a failed check. Not [[noreturn]]: kLog continues.
inline void fail(const char* kind, const char* expr, const char* file,
                 int line, const std::string& detail, bool debug_check) {
  stats().failed.fetch_add(1, std::memory_order_relaxed);
  if (debug_check) {
    stats().debug_failed.fetch_add(1, std::memory_order_relaxed);
  }
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!detail.empty()) os << " — " << detail;
  const std::string msg = os.str();
  switch (static_cast<ContractPolicy>(
      policy_word().load(std::memory_order_relaxed))) {
    case ContractPolicy::kThrow:
      throw ContractViolation(msg);
    case ContractPolicy::kLog:
      std::fprintf(stderr, "%s\n", msg.c_str());
      std::fflush(stderr);
      return;
    case ContractPolicy::kAbort:
      abort_with(msg);
  }
}

/// Mixed absolute/relative closeness, mirroring util/mathx.hpp's
/// approx_eq (re-implemented here: mathx includes this header).
inline bool near(double a, double b, double tol) {
  const double scale =
      std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= tol * scale;
}

inline std::string near_detail(double a, double b, double tol) {
  std::ostringstream os;
  os.precision(17);
  os << "|" << a << " - " << b << "| > " << tol << " (scaled)";
  return os.str();
}

}  // namespace check_detail
}  // namespace parsched

/// Marks a function definition as engine-hot-path: it runs inside the
/// steady-state decision loop and must perform no heap allocation.
/// tools/parsched_analyze.py statically scans every PARSCHED_HOT body
/// for banned constructs (local container/string construction, `new`,
/// make_unique/make_shared, std::function creation); the dynamic twin is
/// check/alloc_guard.hpp, which the engine arms around these regions
/// under PARSCHED_AUDIT=1. A justified allocation (e.g. building the
/// message for an error throw) is suppressed with a trailing
/// `// lint: alloc-ok`, which the linter's suppression-audit mode keeps
/// visible. Expands to [[gnu::hot]] where supported, so the annotation
/// also feeds the optimizer's block placement.
#if defined(__GNUC__) || defined(__clang__)
#define PARSCHED_HOT [[gnu::hot]]
#else
#define PARSCHED_HOT
#endif

// Two-level dispatch so the macros accept an optional message argument.
#define PARSCHED_CHECK_IMPL_(kind, cond, detail, dbg)                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::parsched::check_detail::fail(kind, #cond, __FILE__, __LINE__,       \
                                     detail, dbg);                          \
    }                                                                       \
  } while (false)

#define PARSCHED_CHECK_PICK_(a, b, macro, ...) macro
#define PARSCHED_CHECK_1_(cond) \
  PARSCHED_CHECK_IMPL_("PARSCHED_CHECK", cond, std::string(), false)
#define PARSCHED_CHECK_2_(cond, msg) \
  PARSCHED_CHECK_IMPL_("PARSCHED_CHECK", cond, std::string(msg), false)

/// Always-on contract: fires in Debug, RelWithDebInfo and Release.
#define PARSCHED_CHECK(...)                                             \
  PARSCHED_CHECK_PICK_(__VA_ARGS__, PARSCHED_CHECK_2_,                  \
                       PARSCHED_CHECK_1_)(__VA_ARGS__)

/// Always-on tolerant float equality (mixed absolute/relative, like
/// approx_eq): |a - b| <= tol * max(1, |a|, |b|).
#define PARSCHED_CHECK_NEAR(a, b, tol)                                      \
  do {                                                                      \
    const double parsched_check_a_ = (a);                                   \
    const double parsched_check_b_ = (b);                                   \
    const double parsched_check_tol_ = (tol);                               \
    if (!::parsched::check_detail::near(                                    \
            parsched_check_a_, parsched_check_b_, parsched_check_tol_)) {   \
      ::parsched::check_detail::fail(                                       \
          "PARSCHED_CHECK_NEAR", #a " ≈ " #b, __FILE__, __LINE__,           \
          ::parsched::check_detail::near_detail(                            \
              parsched_check_a_, parsched_check_b_, parsched_check_tol_),   \
          false);                                                           \
    }                                                                       \
  } while (false)

#define PARSCHED_DCHECK_1_(cond) \
  PARSCHED_CHECK_IMPL_("PARSCHED_DCHECK", cond, std::string(), true)
#define PARSCHED_DCHECK_2_(cond, msg) \
  PARSCHED_CHECK_IMPL_("PARSCHED_DCHECK", cond, std::string(msg), true)

/// Debug-only contract for hot paths; compiled out under NDEBUG exactly
/// like assert (the condition is not evaluated).
#if defined(NDEBUG) && !defined(PARSCHED_FORCE_DCHECKS)
#define PARSCHED_DCHECK(...) \
  do {                       \
  } while (false)
#else
#define PARSCHED_DCHECK(...)                                             \
  PARSCHED_CHECK_PICK_(__VA_ARGS__, PARSCHED_DCHECK_2_,                  \
                       PARSCHED_DCHECK_1_)(__VA_ARGS__)
#endif
