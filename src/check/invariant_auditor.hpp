// parsched — InvariantAuditor: an Observer that audits a simulation run
// against the paper's model invariants.
//
// Attach one to an Engine (or pass it to simulate()) and it validates, at
// every decision point and event:
//
//   * allocation feasibility — Σ shares ≤ m (within tolerance), every
//     share ≥ 0, one share per alive job;
//   * the Γ-rate model — between consecutive decision points each job's
//     remaining work decreases *exactly* at rate Γ_j(x_j) · speed (the
//     engine advances with exact event times, so the predicted and
//     observed remaining work must agree to rounding error), and is
//     monotonically nonincreasing;
//   * event-time monotonicity across all callbacks;
//   * completions — completion time ≥ release, near-zero remaining work
//     at completion, no duplicate completion, no completion of a job
//     that never arrived;
//   * optional policy-specific structure lints (see PolicyLint): SRPT
//     ordering for Sequential-SRPT, equal splits for EQUI, and the
//     two-regime share structure of Intermediate-SRPT (Sequential-SRPT
//     when overloaded, equipartition when underloaded).
//
// Violations are recorded (bounded), counted, and optionally escalated:
// with AuditConfig::fail_fast the first violation throws AuditFailure.
// Harnesses that run to completion call ok() / report() afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/observer.hpp"

namespace parsched {

/// Policy-specific structural lints. kAuto derives the lint from the
/// scheduler name (see policy_lint_for); kNone disables structure checks.
enum class PolicyLint {
  kNone,
  kAuto,
  kSequentialSrpt,    ///< 0/1 shares, min(n, m) served, SRPT order
  kEqui,              ///< every alive job holds exactly m/n
  kIntermediateSrpt,  ///< Sequential-SRPT when n ≥ m, EQUI when n < m
};

/// Map a Scheduler::name() string to its structural lint; kNone for
/// policies without a closed-form share structure.
[[nodiscard]] PolicyLint policy_lint_for(const std::string& scheduler_name);

struct AuditConfig {
  /// Engine speed multiplier (EngineConfig::speed) used in the rate model.
  double speed = 1.0;
  /// Tolerance for share feasibility and structure comparisons.
  double share_tol = 1e-9;
  /// Tolerance on predicted vs observed remaining work (scaled by
  /// max(1, size, rate·t) to absorb accumulated rounding).
  double work_tol = 1e-7;
  /// Tolerance for event-time monotonicity and completion ≥ release.
  double time_tol = 1e-9;
  /// Structural lint to apply at decision points.
  PolicyLint policy = PolicyLint::kNone;
  /// Scheduler name used when policy == kAuto (and in messages).
  std::string policy_name;
  /// Throw AuditFailure on the first violation instead of recording.
  bool fail_fast = false;
  /// Keep at most this many violation messages (counts are exact).
  std::size_t max_recorded = 64;
};

/// Thrown by fail_fast audits (and by require_clean()).
class AuditFailure : public std::runtime_error {
 public:
  explicit AuditFailure(const std::string& what) : std::runtime_error(what) {}
};

class InvariantAuditor final : public Observer {
 public:
  /// One recorded invariant violation.
  struct Violation {
    double time = 0.0;
    std::string message;
  };

  explicit InvariantAuditor(int machines, AuditConfig config = {});

  void on_arrival(double t, const Job& job) override;
  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  /// Re-arm for another run. An auditor audits one Engine::run at a time;
  /// reuse without reset() reports stale-state violations by design.
  void reset();

  [[nodiscard]] std::uint64_t violation_count() const { return count_; }
  [[nodiscard]] bool ok() const { return count_ == 0; }
  /// First max_recorded violations (parallel to the exact total count).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Human-readable summary: "clean" or the recorded violations.
  [[nodiscard]] std::string report() const;
  /// Throw AuditFailure with report() unless ok().
  void require_clean() const;

  [[nodiscard]] std::uint64_t decisions_audited() const {
    return decisions_;
  }

 private:
  struct JobState {
    double release = 0.0;
    double size = 0.0;
    double prev_remaining = 0.0;  ///< at the last decision point
    double rate = 0.0;            ///< in force since the last decision
    bool has_prediction = false;
    bool completed = false;
  };

  void record(double t, std::string message);
  void observe_time(double t, const char* where);
  void check_structure(double t, std::span<const AliveJob> alive,
                       std::span<const double> shares);

  int m_;
  AuditConfig cfg_;
  double last_event_ = 0.0;
  double last_decision_ = 0.0;
  bool any_event_ = false;
  std::uint64_t count_ = 0;
  std::uint64_t decisions_ = 0;
  std::vector<Violation> violations_;
  std::unordered_map<JobId, JobState> jobs_;
};

}  // namespace parsched
