// parsched — dynamic hot-path allocation verifier.
//
// PR 5's headline guarantee — the engine's steady-state decision steps
// perform no heap allocation — was protected only by convention. This
// header is the dynamic half of the machine check (the static half is
// tools/parsched_analyze.py scanning PARSCHED_HOT functions):
//
//   * a counting replacement of the global operator new/delete family
//     (compiled into check/alloc_guard.cpp when PARSCHED_ALLOC_HOOK is
//     on — the default except under ASan/TSan, whose allocator
//     interceptors it would displace), maintaining per-thread monotone
//     counters of every allocation and deallocation; and
//
//   * AllocGuard, an RAII scope: while one is armed on a thread, ANY
//     heap allocation on that thread is a hard contract failure routed
//     through the PARSCHED_CHECK policy (throw ContractViolation by
//     default), naming the innermost guarded scope. Guards nest; each
//     thread's guards are independent (ThreadPool workers never trip a
//     guard armed on another thread).
//
// The engine arms guards around the warm decision-step sections under
// PARSCHED_AUDIT=1 (see Engine::decision_step), and
// tests/test_alloc_guard.cpp drives a dense-alive n=10k instance through
// >= 10k guarded decision steps as the regression proof.
//
// Like check/contract.hpp this header is dependency-free on purpose: it
// sits in the check_core layer at the bottom of the architecture DAG
// (tools/layers.toml), so every subsystem — including simcore — may use
// it.
#pragma once

#include <cstdint>

namespace parsched {

/// Per-thread allocation totals since thread start. Monotone; never
/// reset. All zeros when the counting hook is compiled out.
struct AllocStats {
  std::uint64_t allocations = 0;    ///< operator new/new[] calls
  std::uint64_t deallocations = 0;  ///< operator delete/delete[] calls
  std::uint64_t bytes = 0;          ///< total bytes requested
};

/// True when the counting operator new/delete replacement is compiled in
/// (PARSCHED_ALLOC_HOOK). When false, AllocGuard still tracks scope
/// depth but can neither count nor trip — callers that require the hook
/// (tests) should skip.
[[nodiscard]] bool alloc_hook_active() noexcept;

/// This thread's allocation counters.
[[nodiscard]] AllocStats alloc_stats() noexcept;

/// Total number of AllocGuard scopes ever armed on this thread. Lets a
/// harness assert that guarded code actually ran guarded (a guard that
/// never armed proves nothing).
[[nodiscard]] std::uint64_t alloc_guard_scopes_entered() noexcept;

/// RAII allocation fence. While alive, any heap allocation performed by
/// this thread fails a contract (PARSCHED_CHECK semantics: throw /
/// log / abort per the active ContractPolicy) with a message naming
/// `scope`. `scope` must outlive the guard (string literals only).
///
/// Guards nest: the innermost scope is named in the failure message and
/// an inner guard's destruction re-exposes the outer one. Counting is
/// per-thread, so a guard constrains only the constructing thread.
class AllocGuard {
 public:
  explicit AllocGuard(const char* scope = "AllocGuard") noexcept;
  ~AllocGuard();
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations observed on this thread since the guard was armed
  /// (only ever nonzero under ContractPolicy::kLog, where a trip
  /// continues instead of throwing; or when the hook is compiled out,
  /// where it stays 0).
  [[nodiscard]] std::uint64_t observed() const noexcept;

  /// Number of guards currently armed on this thread.
  [[nodiscard]] static int depth() noexcept;

 private:
  const char* scope_;
  const char* prev_scope_;      ///< next-outer guard's name (restored on exit)
  std::uint64_t start_allocs_;  ///< thread allocation count at arming
};

}  // namespace parsched
