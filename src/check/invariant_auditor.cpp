#include "check/invariant_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/mathx.hpp"

namespace parsched {

namespace {

/// Slack for comparing work quantities after integrating over [0, t]:
/// rounding accumulates proportionally to the magnitudes involved.
double work_slack(double tol, double size, double rate, double t) {
  return tol * std::max({1.0, size, rate * std::fabs(t)});
}

}  // namespace

PolicyLint policy_lint_for(const std::string& scheduler_name) {
  if (scheduler_name == "Sequential-SRPT") return PolicyLint::kSequentialSrpt;
  if (scheduler_name == "EQUI") return PolicyLint::kEqui;
  if (scheduler_name == "Intermediate-SRPT") {
    return PolicyLint::kIntermediateSrpt;
  }
  return PolicyLint::kNone;
}

InvariantAuditor::InvariantAuditor(int machines, AuditConfig config)
    : m_(machines), cfg_(std::move(config)) {
  PARSCHED_CHECK(machines >= 1, "auditor needs at least one machine");
  PARSCHED_CHECK(cfg_.speed > 0.0, "auditor speed must be positive");
  if (cfg_.policy == PolicyLint::kAuto) {
    cfg_.policy = policy_lint_for(cfg_.policy_name);
  }
}

void InvariantAuditor::reset() {
  last_event_ = 0.0;
  last_decision_ = 0.0;
  any_event_ = false;
  count_ = 0;
  decisions_ = 0;
  violations_.clear();
  jobs_.clear();
}

void InvariantAuditor::record(double t, std::string message) {
  ++count_;
  if (cfg_.fail_fast) {
    std::ostringstream os;
    os << "audit failure at t=" << t << ": " << message;
    throw AuditFailure(os.str());
  }
  if (violations_.size() < cfg_.max_recorded) {
    violations_.push_back(Violation{t, std::move(message)});
  }
}

void InvariantAuditor::observe_time(double t, const char* where) {
  if (any_event_ && t < last_event_ - cfg_.time_tol) {
    std::ostringstream os;
    os << where << " at t=" << t << " after event at t=" << last_event_
       << ": event times must be nondecreasing";
    record(t, os.str());
  }
  last_event_ = std::max(any_event_ ? last_event_ : t, t);
  any_event_ = true;
}

void InvariantAuditor::on_arrival(double t, const Job& job) {
  observe_time(t, "arrival");
  if (t < job.release - cfg_.time_tol) {
    std::ostringstream os;
    os << "job " << job.id << " admitted at t=" << t
       << " before its release " << job.release;
    record(t, os.str());
  }
  auto [it, inserted] = jobs_.try_emplace(job.id);
  if (!inserted && !it->second.completed) {
    std::ostringstream os;
    os << "duplicate arrival for alive job " << job.id;
    record(t, os.str());
  }
  it->second = JobState{};
  it->second.release = job.release;
  it->second.size = job.size;
}

void InvariantAuditor::on_decision(double t, std::span<const AliveJob> alive,
                                   std::span<const double> shares) {
  observe_time(t, "decision");
  ++decisions_;
  if (shares.size() != alive.size()) {
    std::ostringstream os;
    os << "allocation has " << shares.size() << " shares for "
       << alive.size() << " alive jobs";
    record(t, os.str());
    return;
  }

  // Feasibility: shares ≥ 0, Σ shares ≤ m.
  double sum = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (shares[i] < -cfg_.share_tol) {
      std::ostringstream os;
      os << "negative share " << shares[i] << " for job " << alive[i].id;
      record(t, os.str());
    }
    sum += std::max(0.0, shares[i]);
  }
  const double cap = static_cast<double>(m_);
  if (sum > cap + cfg_.share_tol * (cap + 1.0)) {
    std::ostringstream os;
    os << "overcommitted allocation: sum of shares " << sum << " > m = "
       << m_;
    record(t, os.str());
  }

  const double dt = t - last_decision_;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const AliveJob& a = alive[i];
    auto it = jobs_.find(a.id);
    if (it == jobs_.end()) {
      std::ostringstream os;
      os << "decision covers job " << a.id << " that never arrived";
      record(t, os.str());
      continue;
    }
    JobState& st = it->second;
    if (st.completed) {
      std::ostringstream os;
      os << "decision covers already-completed job " << a.id;
      record(t, os.str());
      continue;
    }
    const double slack = work_slack(cfg_.work_tol, st.size, st.rate, t);
    if (a.remaining < -slack || a.remaining > st.size + slack) {
      std::ostringstream os;
      os << "job " << a.id << " remaining " << a.remaining
         << " outside [0, size=" << st.size << "]";
      record(t, os.str());
    }
    if (st.has_prediction) {
      // The Γ-rate model: constant rate since the previous decision point.
      const double expected =
          std::max(0.0, st.prev_remaining - st.rate * dt);
      if (std::fabs(a.remaining - expected) > slack) {
        std::ostringstream os;
        os << "job " << a.id << " remaining " << a.remaining
           << " deviates from the rate model (expected " << expected
           << " = " << st.prev_remaining << " - " << st.rate << " * " << dt
           << ")";
        record(t, os.str());
      }
      if (a.remaining > st.prev_remaining + slack) {
        std::ostringstream os;
        os << "job " << a.id << " remaining work increased: "
           << st.prev_remaining << " -> " << a.remaining;
        record(t, os.str());
      }
    } else if (std::fabs(a.remaining - st.size) > slack) {
      std::ostringstream os;
      os << "job " << a.id << " was processed before its first decision "
         << "point: remaining " << a.remaining << " != size " << st.size;
      record(t, os.str());
    }
    st.prev_remaining = a.remaining;
    st.rate = cfg_.speed * a.curve.rate(std::max(0.0, shares[i]));
    st.has_prediction = true;
  }

  check_structure(t, alive, shares);
  last_decision_ = t;
}

void InvariantAuditor::check_structure(double t,
                                       std::span<const AliveJob> alive,
                                       std::span<const double> shares) {
  if (cfg_.policy == PolicyLint::kNone || alive.empty()) return;
  const std::size_t n = alive.size();
  const auto m = static_cast<std::size_t>(m_);

  const bool srpt_regime =
      cfg_.policy == PolicyLint::kSequentialSrpt ||
      (cfg_.policy == PolicyLint::kIntermediateSrpt && n >= m);

  if (srpt_regime) {
    // Sequential-SRPT structure: 0/1 shares, min(n, m) jobs served, and
    // every served job no longer than every starved one (SRPT order).
    const std::size_t k = std::min(n, m);
    std::size_t served = 0;
    double max_served = -kInf;
    double min_starved = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = shares[i];
      if (std::fabs(s) > cfg_.share_tol && std::fabs(s - 1.0) >
                                               cfg_.share_tol) {
        std::ostringstream os;
        os << "share " << s << " for job " << alive[i].id
           << " is neither 0 nor 1 in the Sequential-SRPT regime";
        record(t, os.str());
      }
      if (s > 0.5) {
        ++served;
        max_served = std::max(max_served, alive[i].remaining);
      } else {
        min_starved = std::min(min_starved, alive[i].remaining);
      }
    }
    if (served != k) {
      std::ostringstream os;
      os << served << " jobs served; the SRPT regime serves min(n, m) = "
         << k;
      record(t, os.str());
    }
    if (served > 0 && served < n &&
        max_served > min_starved + cfg_.work_tol *
                                       std::max(1.0, min_starved)) {
      std::ostringstream os;
      os << "SRPT ordering violated: served job with remaining "
         << max_served << " while a job with remaining " << min_starved
         << " starves";
      record(t, os.str());
    }
    return;
  }

  // Equipartition structure (EQUI always; ISRPT when underloaded).
  const double want = static_cast<double>(m_) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(shares[i] - want) >
        cfg_.share_tol * std::max(1.0, want)) {
      std::ostringstream os;
      os << "unequal split: share " << shares[i] << " for job "
         << alive[i].id << ", equipartition gives m/n = " << want;
      record(t, os.str());
    }
  }
}

void InvariantAuditor::on_completion(double t, const Job& job) {
  observe_time(t, "completion");
  if (t < job.release - cfg_.time_tol) {
    std::ostringstream os;
    os << "job " << job.id << " completed at t=" << t
       << " before its release " << job.release;
    record(t, os.str());
  }
  auto it = jobs_.find(job.id);
  if (it == jobs_.end()) {
    std::ostringstream os;
    os << "completion of job " << job.id << " that never arrived";
    record(t, os.str());
    return;
  }
  JobState& st = it->second;
  if (st.completed) {
    std::ostringstream os;
    os << "job " << job.id << " completed twice";
    record(t, os.str());
    return;
  }
  if (st.has_prediction) {
    // At completion the rate model must have driven the remaining work to
    // (numerically) zero; completing early would discard work.
    const double expected =
        std::max(0.0, st.prev_remaining - st.rate * (t - last_decision_));
    if (expected > work_slack(cfg_.work_tol, st.size, st.rate, t)) {
      std::ostringstream os;
      os << "job " << job.id << " completed with " << expected
         << " predicted remaining work";
      record(t, os.str());
    }
  }
  st.completed = true;
}

void InvariantAuditor::on_done(double t) {
  observe_time(t, "done");
  for (const auto& [id, st] : jobs_) {
    if (!st.completed) {
      std::ostringstream os;
      os << "run finished with uncompleted job " << id;
      record(t, os.str());
    }
  }
}

std::string InvariantAuditor::report() const {
  std::ostringstream os;
  os << "InvariantAuditor";
  if (!cfg_.policy_name.empty()) os << "[" << cfg_.policy_name << "]";
  if (ok()) {
    os << ": clean (" << decisions_ << " decisions audited)";
    return os.str();
  }
  os << ": " << count_ << " violation(s)";
  for (const Violation& v : violations_) {
    os << "\n  t=" << v.time << ": " << v.message;
  }
  if (count_ > violations_.size()) {
    os << "\n  ... and " << (count_ - violations_.size()) << " more";
  }
  return os.str();
}

void InvariantAuditor::require_clean() const {
  if (!ok()) throw AuditFailure(report());
}

}  // namespace parsched
