#include "check/determinism.hpp"

#include <bit>
#include <sstream>

namespace parsched {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

void TrajectoryHasher::mix_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xffULL;
    hash_ *= kFnvPrime;
  }
}

void TrajectoryHasher::mix_double(double v) {
  // +0.0 and -0.0 compare equal but differ bitwise; normalize so a replay
  // differing only in zero sign still hashes identically.
  if (v == 0.0) v = 0.0;  // lint: float-eq-ok
  mix_u64(std::bit_cast<std::uint64_t>(v));
}

void TrajectoryHasher::reset() {
  hash_ = 0xcbf29ce484222325ULL;
  events_ = 0;
}

void TrajectoryHasher::on_arrival(double t, const Job& job) {
  ++events_;
  mix_u64(1);
  mix_double(t);
  mix_u64(job.id);
  mix_double(job.size);
  mix_double(job.release);
}

void TrajectoryHasher::on_decision(double t, std::span<const AliveJob> alive,
                                   std::span<const double> shares) {
  ++events_;
  mix_u64(2);
  mix_double(t);
  mix_u64(alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    mix_u64(alive[i].id);
    mix_double(alive[i].remaining);
    mix_double(i < shares.size() ? shares[i] : -1.0);
  }
}

void TrajectoryHasher::on_completion(double t, const Job& job) {
  ++events_;
  mix_u64(3);
  mix_double(t);
  mix_u64(job.id);
}

void TrajectoryHasher::on_done(double t) {
  ++events_;
  mix_u64(4);
  mix_double(t);
}

std::string DeterminismReport::to_string() const {
  std::ostringstream os;
  if (deterministic) {
    os << "deterministic: " << events_first << " events, hash 0x"
       << std::hex << hash_first;
  } else {
    os << "NONDETERMINISTIC: run 1 (" << std::dec << events_first
       << " events, hash 0x" << std::hex << hash_first << ") vs run 2 ("
       << std::dec << events_second << " events, hash 0x" << std::hex
       << hash_second << ")";
  }
  return os.str();
}

DeterminismReport check_determinism(
    const Instance& instance,
    const std::function<std::unique_ptr<Scheduler>()>& make_sched,
    const EngineConfig& config) {
  TrajectoryHasher first;
  TrajectoryHasher second;
  {
    auto sched = make_sched();
    (void)simulate(instance, *sched, config, {&first});
  }
  {
    auto sched = make_sched();
    (void)simulate(instance, *sched, config, {&second});
  }
  DeterminismReport rep;
  rep.hash_first = first.hash();
  rep.hash_second = second.hash();
  rep.events_first = first.events();
  rep.events_second = second.events();
  rep.deterministic = rep.hash_first == rep.hash_second &&
                      rep.events_first == rep.events_second;
  return rep;
}

DeterminismReport check_determinism(const Instance& instance,
                                    Scheduler& sched,
                                    const EngineConfig& config) {
  TrajectoryHasher first;
  TrajectoryHasher second;
  (void)simulate(instance, sched, config, {&first});
  (void)simulate(instance, sched, config, {&second});
  DeterminismReport rep;
  rep.hash_first = first.hash();
  rep.hash_second = second.hash();
  rep.events_first = first.events();
  rep.events_second = second.events();
  rep.deterministic = rep.hash_first == rep.hash_second &&
                      rep.events_first == rep.events_second;
  return rep;
}

}  // namespace parsched
