// parsched — determinism checking: replay a simulation and diff
// trajectory hashes.
//
// Every Scheduler is documented to be a deterministic function of the
// context plus internal state reset by reset(); the engine itself is
// event-driven with no hidden entropy. This module makes that testable:
// TrajectoryHasher folds every observer callback (times, job ids,
// remaining work, shares) into an order-sensitive FNV-1a hash, and
// check_determinism runs an instance twice against independently
// constructed schedulers and compares the hashes. Any nondeterminism —
// an unseeded RNG, iteration over pointer-keyed containers, stale state
// surviving reset() — shows up as a hash mismatch at a reported event
// index.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "simcore/engine.hpp"
#include "simcore/observer.hpp"

namespace parsched {

/// Observer that folds the full observable trajectory of a run into a
/// 64-bit order-sensitive hash.
class TrajectoryHasher final : public Observer {
 public:
  void on_arrival(double t, const Job& job) override;
  void on_decision(double t, std::span<const AliveJob> alive,
                   std::span<const double> shares) override;
  void on_completion(double t, const Job& job) override;
  void on_done(double t) override;

  void reset();

  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  void mix_u64(std::uint64_t v);
  void mix_double(double v);

  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t events_ = 0;
};

struct DeterminismReport {
  bool deterministic = false;
  std::uint64_t hash_first = 0;
  std::uint64_t hash_second = 0;
  std::uint64_t events_first = 0;
  std::uint64_t events_second = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Simulate `instance` twice with schedulers built by `make_sched` (called
/// once per run so no state can leak between replays) and compare
/// trajectory hashes.
[[nodiscard]] DeterminismReport check_determinism(
    const Instance& instance,
    const std::function<std::unique_ptr<Scheduler>()>& make_sched,
    const EngineConfig& config = {});

/// Convenience overload: reuse one scheduler object across both runs,
/// relying on Scheduler::reset() — stricter, since it also catches state
/// that survives reset().
[[nodiscard]] DeterminismReport check_determinism(
    const Instance& instance, Scheduler& sched,
    const EngineConfig& config = {});

}  // namespace parsched
