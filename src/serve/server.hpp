// parsched — the session multiplexer.
//
// A Server owns many concurrent Sessions and runs their operations on
// the exec::ThreadPool. Each session is a *strand*: its queued
// operations execute one at a time, in submission order, so Session
// itself needs no locking — but operations of different sessions run
// concurrently on the pool.
//
// Backpressure is explicit and non-blocking: every submit() answers
// synchronously with a Submit verdict. A full per-session queue, an
// unknown session, a draining server, or a session cap all *reject* —
// the server never blocks a caller and never drops work silently. The
// soak leg of CI drives this at queue-overflow rates under TSan.
//
// drain() is the graceful shutdown: new work is rejected with
// Submit::kDraining, every already-queued operation still runs, and the
// call returns once the pool is idle. The destructor drains.
//
// Metrics (when Config::metrics is set):
//   serve.sessions.opened / serve.sessions.closed   counters
//   serve.sessions.active                           gauge
//   serve.queue.depth                               gauge (queued ops,
//                                                   all sessions)
//   serve.reject.queue_full / .unknown_session
//     / .draining / .session_cap                    counters
//   serve.requests                                  counter
//   serve.request                                   timer (op execution)
//   serve.request.latency_ms                        histogram (op
//                                                   execution, ms — the
//                                                   server-side twin of
//                                                   loadgen's
//                                                   serve.client.latency_ms)
//
// Flight recording (when Config::recorder is set): every submit verdict
// and every strand dispatch lands in the ring, and drain() dumps it
// (reason "drain") once the pool is quiet — so a soak run always leaves
// a black box behind, even when nothing went wrong.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/session.hpp"

namespace parsched::obs {
class FlightRecorder;
}  // namespace parsched::obs

namespace parsched::serve {

/// The latency bucket bounds (milliseconds) shared by the server-side
/// serve.request.latency_ms histogram and loadgen's
/// serve.client.latency_ms — identical buckets keep the two sides
/// comparable in exposition output and BENCH reports.
[[nodiscard]] const std::vector<double>& latency_bounds_ms();

using SessionId = std::uint64_t;

/// Synchronous verdict for every server call.
enum class Submit : std::uint8_t {
  kAccepted,
  kQueueFull,       ///< the session's op queue is at Config::max_queue
  kUnknownSession,  ///< no such id (never opened, or already closed)
  kDraining,        ///< server drain()ing, or the session is closing
  kSessionCap,      ///< Config::max_sessions sessions already open
};

[[nodiscard]] const char* to_string(Submit s);

class Server {
 public:
  struct Config {
    int threads = 0;  ///< pool size; <= 0 means hardware_threads()
    std::size_t max_sessions = 64;
    std::size_t max_queue = 128;  ///< per-session op queue bound
    /// Borrowed; must outlive the server. Also handed to sessions the
    /// server opens.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional flight recorder (obs/flight_recorder.hpp): submit
    /// verdicts and strand dispatches are recorded, and drain() dumps
    /// the ring. Borrowed; must outlive the server.
    obs::FlightRecorder* recorder = nullptr;
  };

  explicit Server(Config cfg);
  ~Server();  // drain()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Open a session; on kAccepted `id_out` holds the new id. Throws
  /// std::invalid_argument for an unknown policy spec (a caller error,
  /// not load — rejects are for load).
  Submit open(const Session::Config& scfg, SessionId& id_out);

  /// Adopt an externally built session (snapshot restore path).
  Submit adopt(std::unique_ptr<Session> session, SessionId& id_out);

  /// Queue `op` on the session's strand. The operation runs on a pool
  /// thread with exclusive access to the session; exceptions it throws
  /// are swallowed after being counted (serve.requests still ticks) —
  /// protocol-level callers report errors through their own channel.
  Submit submit(SessionId id, std::function<void(Session&)> op);

  /// Close a session: already-queued operations still run, subsequent
  /// submits reject with kDraining, and the session is destroyed once
  /// its queue empties.
  Submit close(SessionId id);

  /// Reject new work and wait until every queued operation has run.
  /// Idempotent; the server is unusable afterwards.
  void drain();

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] int threads() const { return pool_.threads(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Entry {
    std::mutex mu;
    std::unique_ptr<Session> session;
    std::deque<std::function<void(Session&)>> queue;
    bool running = false;  ///< a strand task is active on the pool
    bool closing = false;
    bool removed = false;  ///< map erasure claimed (close/strand race)
  };

  Submit install(std::unique_ptr<Session> session, SessionId& id_out);
  Submit submit_impl(SessionId id, std::function<void(Session&)> op);
  void run_strand(SessionId id, const std::shared_ptr<Entry>& entry);
  void remove_entry(SessionId id, const std::shared_ptr<Entry>& entry);
  void queue_depth_delta(std::int64_t delta);

  Config cfg_;
  exec::ThreadPool pool_;

  // Instrument references cached at construction (registry lookups take a
  // lock; the dispatch path should not).
  obs::Counter* requests_ = nullptr;
  obs::Counter* op_errors_ = nullptr;
  obs::TimerStat* request_timer_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;

  mutable std::mutex mu_;  // guards sessions_, next_id_, draining_
  std::unordered_map<SessionId, std::shared_ptr<Entry>> sessions_;
  SessionId next_id_ = 1;
  bool draining_ = false;

  std::mutex depth_mu_;  // guards queued_ops_ (mirrors the gauge)
  std::int64_t queued_ops_ = 0;
};

}  // namespace parsched::serve
