#include "serve/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "serve/cluster.hpp"

namespace parsched::serve {

LoadShape parse_load_shape(std::string_view name) {
  if (name == "uniform") return LoadShape::kUniform;
  if (name == "zipf") return LoadShape::kZipf;
  if (name == "burst") return LoadShape::kBurst;
  if (name == "diurnal") return LoadShape::kDiurnal;
  throw std::invalid_argument("unknown load shape: \"" + std::string(name) +
                              "\" (want uniform|zipf|burst|diurnal)");
}

const char* load_shape_name(LoadShape shape) {
  switch (shape) {
    case LoadShape::kUniform:
      return "uniform";
    case LoadShape::kZipf:
      return "zipf";
    case LoadShape::kBurst:
      return "burst";
    case LoadShape::kDiurnal:
      return "diurnal";
  }
  return "?";
}

double half_step_pow(double base, double theta) {
  const double doubled = theta * 2.0;
  if (!(doubled >= 0.0) || doubled != std::floor(doubled) ||
      doubled > 1024.0) {
    throw std::invalid_argument(
        "exponent must be a small non-negative multiple of 0.5, got " +
        std::to_string(theta));
  }
  if (base < 0.0) {
    throw std::invalid_argument("base must be non-negative, got " +
                                std::to_string(base));
  }
  auto halves = static_cast<unsigned>(doubled);
  // base^(halves/2): integer power times an optional sqrt. Multiply and
  // sqrt are correctly rounded, so this is bit-identical everywhere —
  // which libm pow is not.
  double out = 1.0;
  for (unsigned i = 0; i < halves / 2; ++i) out *= base;
  if ((halves & 1u) != 0) out *= std::sqrt(base);
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler needs n >= 1");
  cum_.resize(n);
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    running += 1.0 / half_step_pow(static_cast<double>(i + 1), theta);
    cum_[i] = running;
  }
  const double total = cum_.back();
  for (double& c : cum_) c /= total;
  cum_.back() = 1.0;  // guard the last bucket against rounding
}

std::size_t ZipfSampler::sample(double u) const {
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cum_.begin());
  return idx < cum_.size() ? idx : cum_.size() - 1;
}

double ZipfSampler::weight(std::size_t i) const {
  if (i >= cum_.size()) throw std::out_of_range("ZipfSampler::weight");
  return i == 0 ? cum_[0] : cum_[i] - cum_[i - 1];
}

std::vector<int> zipf_admission_counts(std::size_t sessions, int total_jobs,
                                       double theta) {
  if (sessions == 0 || total_jobs < 0) {
    throw std::invalid_argument("zipf_admission_counts: empty fleet");
  }
  std::vector<double> w(sessions);
  double total_w = 0.0;
  for (std::size_t i = 0; i < sessions; ++i) {
    w[i] = 1.0 / half_step_pow(static_cast<double>(i + 1), theta);
    total_w += w[i];
  }
  // Largest-remainder apportionment: exact total, deterministic ties.
  std::vector<int> counts(sessions, 0);
  std::vector<double> frac(sessions, 0.0);
  int assigned = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const double quota = static_cast<double>(total_jobs) * w[i] / total_w;
    counts[i] = static_cast<int>(quota);
    frac[i] = quota - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<std::size_t> order(sessions);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&frac](std::size_t a, std::size_t b) {
                     return frac[a] > frac[b];
                   });
  for (std::size_t k = 0; assigned < total_jobs; ++k) {
    counts[order[k % sessions]] += 1;
    ++assigned;
  }
  if (total_jobs >= static_cast<int>(sessions)) {
    // The Zipf tail can round to zero; a session with no jobs would
    // never exercise its strand, so top each one up from the heaviest.
    for (std::size_t i = 0; i < sessions; ++i) {
      if (counts[i] > 0) continue;
      const auto richest = static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      counts[richest] -= 1;
      counts[i] = 1;
    }
  }
  return counts;
}

std::uint64_t key_for_shard(int shard, int shards, std::uint64_t start) {
  for (std::uint64_t k = start; k < start + (1u << 20); ++k) {
    if (consistent_shard(k, shards) == shard) return k;
  }
  throw std::runtime_error("no key found for shard " + std::to_string(shard) +
                           " of " + std::to_string(shards));
}

double burst_release(int j, int per_burst, double gap) {
  if (j < 0 || per_burst < 1) {
    throw std::invalid_argument("burst_release: need j >= 0, per_burst >= 1");
  }
  return static_cast<double>(j / per_burst) * gap;
}

double diurnal_release(int j, int jobs, double duration, double peak_ratio) {
  if (j < 0 || j >= jobs || !(duration > 0.0) || !(peak_ratio >= 1.0)) {
    throw std::invalid_argument("diurnal_release: bad arguments");
  }
  const double u =
      (static_cast<double>(j) + 0.5) / static_cast<double>(jobs);
  // Exact sentinel: peak 1.0 means "no ramp", not "nearly flat" — the
  // uniform branch must be taken bit-deterministically.
  if (peak_ratio == 1.0) return u * duration;  // lint: float-eq-ok
  // Rate ramps 1 -> peak over [0, T/2], back down over [T/2, T]. The
  // cumulative arrival curve on the upslope is t + (p-1) t^2 / (2 h);
  // its inverse needs only a sqrt, keeping releases bit-deterministic.
  const double half = duration / 2.0;
  const double half_mass = half * (1.0 + peak_ratio) / 2.0;
  const double target = u * (2.0 * half_mass);
  const double a = (peak_ratio - 1.0) / (2.0 * half);
  const auto invert_upslope = [a](double mass) {
    return (std::sqrt(1.0 + 4.0 * a * mass) - 1.0) / (2.0 * a);
  };
  if (target <= half_mass) return invert_upslope(target);
  return duration - invert_upslope(2.0 * half_mass - target);
}

}  // namespace parsched::serve
