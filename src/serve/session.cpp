#include "serve/session.hpp"

#include <stdexcept>
#include <utility>

#include "check/contract.hpp"
#include "sched/registry.hpp"
#include "serve/snapshot.hpp"

namespace parsched::serve {

namespace {

EngineConfig engine_config(const Session::Config& cfg) {
  EngineConfig ec;
  ec.speed = cfg.speed;
  ec.metrics = cfg.metrics;
  ec.recorder = cfg.recorder;
  return ec;
}

}  // namespace

Session::Session(Config cfg)
    : cfg_(std::move(cfg)), sched_(make_scheduler(cfg_.policy)) {
  policy_name_ = sched_->name();
  engine_ = std::make_unique<Engine>(cfg_.machines, engine_config(cfg_));
  engine_->begin(*sched_);
}

Session::Session(RestoreTag, SessionSnapshot snap,
                 obs::MetricsRegistry* metrics) {
  cfg_.policy = snap.policy;
  cfg_.machines = snap.engine.machines;
  cfg_.speed = snap.engine.config.speed;
  cfg_.metrics = metrics;
  sched_ = make_scheduler(snap.policy);
  policy_name_ = sched_->name();
  sched_->reset();
  sched_->load_state(snap.scheduler_state);
  EngineConfig ec = snap.engine.config;
  ec.metrics = metrics;
  ec.recorder = nullptr;  // observability plumbing, never restored
  ec.collect_stats = false;  // profiling does not continue across a restore
  engine_ = std::make_unique<Engine>(snap.engine.machines, ec);
  engine_->import_state(snap.engine, *sched_);
}

std::unique_ptr<Session> Session::restore(const std::string& blob,
                                          obs::MetricsRegistry* metrics) {
  return restore(decode_snapshot(blob), metrics);
}

std::unique_ptr<Session> Session::restore(SessionSnapshot snap,
                                          obs::MetricsRegistry* metrics) {
  return std::unique_ptr<Session>(
      new Session(RestoreTag{}, std::move(snap), metrics));
}

void Session::admit(const Job& job) {
  if (finished()) {
    throw std::invalid_argument("session already finished");
  }
  engine_->admit(job);
}

void Session::advance(double to_time) {
  if (finished()) {
    throw std::invalid_argument("session already finished");
  }
  engine_->advance_to(to_time);
}

void Session::finish() {
  if (finished()) return;
  final_ = engine_->finish();
}

const SimResult& Session::result() const {
  PARSCHED_CHECK(final_.has_value(), "Session::result() before finish()");
  return *final_;
}

const SimResult& Session::partial() const {
  return final_.has_value() ? *final_ : engine_->partial();
}

double Session::frontier() const {
  return final_.has_value() ? engine_->time() : engine_->frontier();
}

std::string Session::snapshot() const {
  if (finished()) {
    throw std::invalid_argument("cannot snapshot a finished session");
  }
  SessionSnapshot snap;
  snap.policy = cfg_.policy;
  snap.scheduler_state = sched_->save_state();
  snap.engine = engine_->export_state();
  return encode_snapshot(snap);
}

}  // namespace parsched::serve
