#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace parsched::serve {

namespace {

constexpr int kMaxRetries = 64;

void backoff_sleep(int attempt) {
  timespec ts{};
  // 1ms, doubling, capped at 50ms — enough for a strand to drain a few
  // ops without turning the soak into a sleep benchmark.
  long ns = 1'000'000L << (attempt < 6 ? attempt : 6);
  if (ns > 50'000'000L) ns = 50'000'000L;
  ts.tv_nsec = ns;
  nanosleep(&ts, nullptr);
}

/// splitmix64 step — the same generator family exec::task_seed uses, so
/// streams stay decorrelated across sessions.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

struct Shared {
  std::mutex mu;
  LoadgenResult result;
  obs::Counter* requests = nullptr;
  obs::Counter* rejects = nullptr;
  obs::Counter* errors = nullptr;
  obs::Histogram* latency_ms = nullptr;
};

/// One timed request with reject-retry. Returns the parsed response;
/// throws on protocol errors or exhausted retries.
obs::JsonValue timed_request(Client& client, const std::string& line,
                             Shared& shared) {
  for (int attempt = 0;; ++attempt) {
    const double t0 = obs::monotonic_seconds();
    const std::string resp = client.request(line);
    const double ms = (obs::monotonic_seconds() - t0) * 1e3;
    if (shared.requests != nullptr) shared.requests->inc();
    if (shared.latency_ms != nullptr) shared.latency_ms->observe(ms);
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.result.requests;
    }
    obs::JsonValue v;
    std::string err;
    if (!obs::json_parse(resp, v, &err)) {
      throw std::runtime_error("unparseable response: " + err);
    }
    if (v.bool_or("ok", false)) return v;
    const std::string reject = v.string_or("reject", "");
    if (reject.empty()) {
      throw std::runtime_error("server error: " +
                               v.string_or("error", "unknown"));
    }
    // Backpressure: count, back off, retry the same request.
    if (shared.rejects != nullptr) shared.rejects->inc();
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.result.rejects;
    }
    if (attempt >= kMaxRetries) {
      throw std::runtime_error("request rejected " +
                               std::to_string(kMaxRetries) +
                               " times (" + reject + "): " + line);
    }
    backoff_sleep(attempt);
  }
}

std::string admit_line(int request_id, std::uint64_t session,
                       std::uint32_t job_id, double release, double size,
                       double alpha) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("op", "admit");
  w.kv("id", request_id);
  w.kv("session", session);
  w.key("job");
  w.begin_object();
  w.kv("id", job_id);
  w.kv("release", release);
  w.kv("size", size);
  w.kv("curve", "pow:" + obs::json_number(alpha));
  w.end_object();
  w.end_object();
  return os.str();
}

std::string simple_line(const char* op, int request_id,
                        std::uint64_t session) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("op", op);
  w.kv("id", request_id);
  w.kv("session", session);
  w.end_object();
  return os.str();
}

SessionOutcome drive_session(const LoadgenConfig& cfg, int index,
                             Shared& shared) {
  const double t0 = obs::monotonic_seconds();
  Client client(cfg.socket_path, cfg.connect_timeout);
  std::uint64_t rng = exec::task_seed(cfg.seed, static_cast<std::uint64_t>(
                                                    index));
  int rid = 0;

  std::ostringstream open_os;
  {
    obs::JsonWriter w(open_os);
    w.begin_object();
    w.kv("op", "open");
    w.kv("id", rid++);
    w.kv("policy", cfg.policy);
    w.kv("machines", cfg.machines);
    w.end_object();
  }
  const obs::JsonValue opened =
      timed_request(client, open_os.str(), shared);
  const auto session =
      static_cast<std::uint64_t>(opened.number_or("session", 0.0));
  if (session == 0) throw std::runtime_error("open returned no session");

  double last_release = 0.0;
  for (int i = 0; i < cfg.admissions; ++i) {
    const double release =
        static_cast<double>(i) / (cfg.rate > 0.0 ? cfg.rate : 1.0);
    const double size = 0.5 + 1.5 * next_unit(rng);
    const double alpha = 0.25 + 0.5 * next_unit(rng);
    timed_request(client,
                  admit_line(rid++, session,
                             static_cast<std::uint32_t>(i), release, size,
                             alpha),
                  shared);
    last_release = release;
    if (cfg.advance_every > 0 && (i + 1) % cfg.advance_every == 0) {
      std::ostringstream adv;
      obs::JsonWriter w(adv);
      w.begin_object();
      w.kv("op", "advance");
      w.kv("id", rid++);
      w.kv("session", session);
      w.kv("to", release);
      w.end_object();
      timed_request(client, adv.str(), shared);
    }
    if (cfg.stats_every > 0 && (i + 1) % cfg.stats_every == 0) {
      // Live-telemetry probe riding inside the load: the exposition
      // writer races every hot strand of the server while we scrape.
      std::ostringstream st;
      obs::JsonWriter w(st);
      w.begin_object();
      w.kv("op", "stats");
      w.kv("id", rid++);
      w.end_object();
      const obs::JsonValue stats = timed_request(client, st.str(), shared);
      if (stats.string_or("exposition", "").empty()) {
        throw std::runtime_error("stats returned an empty exposition");
      }
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.result.stats_scrapes;
    }
  }
  (void)last_release;
  timed_request(client, simple_line("query", rid++, session), shared);
  const obs::JsonValue fin =
      timed_request(client, simple_line("finish", rid++, session), shared);
  timed_request(client, simple_line("close", rid++, session), shared);

  SessionOutcome out;
  out.session_index = index;
  out.jobs = static_cast<std::uint64_t>(fin.number_or("jobs", 0.0));
  out.total_flow = fin.number_or("total_flow", 0.0);
  out.weighted_flow = fin.number_or("weighted_flow", 0.0);
  out.fractional_flow = fin.number_or("fractional_flow", 0.0);
  out.makespan = fin.number_or("makespan", 0.0);
  out.decisions = static_cast<std::uint64_t>(fin.number_or("decisions",
                                                           0.0));
  out.events = static_cast<std::uint64_t>(fin.number_or("events", 0.0));
  out.wall_seconds = obs::monotonic_seconds() - t0;
  return out;
}

}  // namespace

std::uint64_t LoadgenResult::jobs_completed() const {
  std::uint64_t n = 0;
  for (const SessionOutcome& s : sessions) n += s.jobs;
  return n;
}

double LoadgenResult::total_flow() const {
  double f = 0.0;
  for (const SessionOutcome& s : sessions) f += s.total_flow;
  return f;
}

LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
  if (cfg.socket_path.empty()) {
    throw std::runtime_error("loadgen requires a socket path");
  }
  if (cfg.sessions < 1 || cfg.admissions < 1) {
    throw std::runtime_error("loadgen needs sessions >= 1, admissions >= 1");
  }

  Shared shared;
  if (cfg.metrics != nullptr) {
    shared.requests = &cfg.metrics->counter("serve.client.requests");
    shared.rejects = &cfg.metrics->counter("serve.client.rejects");
    shared.errors = &cfg.metrics->counter("serve.client.errors");
    shared.latency_ms = &cfg.metrics->histogram("serve.client.latency_ms",
                                                latency_bounds_ms());
  }
  shared.result.sessions.resize(static_cast<std::size_t>(cfg.sessions));

  const double t0 = obs::monotonic_seconds();
  exec::ThreadPool pool(
      exec::ThreadPool::Config{cfg.sessions, cfg.metrics});
  std::vector<std::future<void>> tasks;
  tasks.reserve(static_cast<std::size_t>(cfg.sessions));
  for (int i = 0; i < cfg.sessions; ++i) {
    tasks.push_back(pool.submit([&cfg, &shared, i] {
      try {
        SessionOutcome out = drive_session(cfg, i, shared);
        std::lock_guard<std::mutex> lock(shared.mu);
        shared.result.sessions[static_cast<std::size_t>(i)] =
            std::move(out);
      } catch (const std::exception&) {
        if (shared.errors != nullptr) shared.errors->inc();
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          ++shared.result.errors;
        }
        throw;
      }
    }));
  }
  std::string first_error;
  for (auto& t : tasks) {
    try {
      t.get();
    } catch (const std::exception& e) {
      if (first_error.empty()) first_error = e.what();
    }
  }
  pool.shutdown(true);

  if (cfg.shutdown_after) {
    Client admin(cfg.socket_path, cfg.connect_timeout);
    (void)admin.request(R"({"op":"shutdown","id":0})");
  }

  shared.result.wall_seconds = obs::monotonic_seconds() - t0;
  if (!first_error.empty() && shared.result.errors == 0) {
    // A connect failure throws before any request is counted.
    shared.result.errors = 1;
  }
  LoadgenResult out = std::move(shared.result);
  if (!first_error.empty()) {
    // Sessions that failed leave zeroed outcomes; callers treat
    // errors > 0 as a failed soak. Surface the first cause.
    out.sessions.erase(
        std::remove_if(out.sessions.begin(), out.sessions.end(),
                       [](const SessionOutcome& s) { return s.jobs == 0; }),
        out.sessions.end());
  }
  return out;
}

}  // namespace parsched::serve
