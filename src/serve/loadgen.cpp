#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "serve/binproto.hpp"
#include "serve/cluster.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "speedup/curve.hpp"

namespace parsched::serve {

namespace {

constexpr int kMaxRetries = 64;

void backoff_sleep(int attempt) {
  timespec ts{};
  // 1ms, doubling, capped at 50ms — enough for a strand to drain a few
  // ops without turning the soak into a sleep benchmark.
  long ns = 1'000'000L << (attempt < 6 ? attempt : 6);
  if (ns > 50'000'000L) ns = 50'000'000L;
  ts.tv_nsec = ns;
  nanosleep(&ts, nullptr);
}

/// splitmix64 step — the same generator family exec::task_seed uses, so
/// streams stay decorrelated across sessions.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

struct Shared {
  std::mutex mu;
  LoadgenResult result;
  obs::Counter* requests = nullptr;
  obs::Counter* rejects = nullptr;
  obs::Counter* errors = nullptr;
  obs::Histogram* latency_ms = nullptr;
};

/// One protocol reply, normalized across NDJSON and PBIN. A non-empty
/// `reject` is retryable backpressure; a non-empty `error` is a caller
/// bug or server failure.
struct WireReply {
  bool ok = false;
  std::string reject;
  std::string error;
  std::uint64_t session = 0;   // open
  SessionOutcome result;       // finish (jobs/flows/decisions/events)
  std::string exposition;      // stats
};

/// One worker connection: the protocol verbs the generator issues,
/// abstracted over the wire format so the driver is written once.
class WireClient {
 public:
  virtual ~WireClient() = default;
  virtual WireReply open(const std::string& policy, int machines,
                         std::uint64_t key) = 0;
  virtual WireReply admit(std::uint64_t session, std::uint32_t job,
                          double release, double size, double alpha) = 0;
  virtual WireReply advance(std::uint64_t session, double to) = 0;
  virtual WireReply query(std::uint64_t session) = 0;
  virtual WireReply finish(std::uint64_t session) = 0;
  virtual WireReply close(std::uint64_t session) = 0;
  virtual WireReply stats() = 0;
};

// ---- NDJSON wire ----------------------------------------------------------

class JsonWire final : public WireClient {
 public:
  JsonWire(const std::string& path, double timeout)
      : client_(path, timeout) {}

  WireReply open(const std::string& policy, int machines,
                 std::uint64_t key) override {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", "open");
    w.kv("id", rid_++);
    w.kv("policy", policy);
    w.kv("machines", machines);
    if (key != 0) w.kv("key", key);
    w.end_object();
    return call(os.str());
  }

  WireReply admit(std::uint64_t session, std::uint32_t job, double release,
                  double size, double alpha) override {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", "admit");
    w.kv("id", rid_++);
    w.kv("session", session);
    w.key("job");
    w.begin_object();
    w.kv("id", job);
    w.kv("release", release);
    w.kv("size", size);
    w.kv("curve", "pow:" + obs::json_number(alpha));
    w.end_object();
    w.end_object();
    return call(os.str());
  }

  WireReply advance(std::uint64_t session, double to) override {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", "advance");
    w.kv("id", rid_++);
    w.kv("session", session);
    w.kv("to", to);
    w.end_object();
    return call(os.str());
  }

  WireReply query(std::uint64_t session) override {
    return call(simple("query", session));
  }
  WireReply finish(std::uint64_t session) override {
    return call(simple("finish", session));
  }
  WireReply close(std::uint64_t session) override {
    return call(simple("close", session));
  }

  WireReply stats() override {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", "stats");
    w.kv("id", rid_++);
    w.end_object();
    return call(os.str());
  }

 private:
  std::string simple(const char* op, std::uint64_t session) {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("op", op);
    w.kv("id", rid_++);
    w.kv("session", session);
    w.end_object();
    return os.str();
  }

  WireReply call(const std::string& line) {
    const std::string resp = client_.request(line);
    obs::JsonValue v;
    std::string err;
    if (!obs::json_parse(resp, v, &err)) {
      throw std::runtime_error("unparseable response: " + err);
    }
    WireReply out;
    out.ok = v.bool_or("ok", false);
    if (!out.ok) {
      out.reject = v.string_or("reject", "");
      out.error = v.string_or("error", "unknown");
      return out;
    }
    out.session = static_cast<std::uint64_t>(v.number_or("session", 0.0));
    out.exposition = v.string_or("exposition", "");
    SessionOutcome& r = out.result;
    r.jobs = static_cast<std::uint64_t>(v.number_or("jobs", 0.0));
    r.total_flow = v.number_or("total_flow", 0.0);
    r.weighted_flow = v.number_or("weighted_flow", 0.0);
    r.fractional_flow = v.number_or("fractional_flow", 0.0);
    r.makespan = v.number_or("makespan", 0.0);
    r.decisions = static_cast<std::uint64_t>(v.number_or("decisions", 0.0));
    r.events = static_cast<std::uint64_t>(v.number_or("events", 0.0));
    return out;
  }

  Client client_;
  int rid_ = 0;
};

// ---- PBIN wire ------------------------------------------------------------

class BinWire final : public WireClient {
 public:
  BinWire(const std::string& path, double timeout) : client_(path, timeout) {}

  WireReply open(const std::string& policy, int machines,
                 std::uint64_t key) override {
    return call(bin_open(rid_++, policy, machines, 1.0, key));
  }

  WireReply admit(std::uint64_t session, std::uint32_t job, double release,
                  double size, double alpha) override {
    Job j;
    j.id = job;
    j.release = release;
    j.size = size;
    j.curve = SpeedupCurve::power_law(alpha);
    return call(bin_admit(rid_++, session, j));
  }

  WireReply advance(std::uint64_t session, double to) override {
    return call(bin_advance(rid_++, session, to));
  }
  WireReply query(std::uint64_t session) override {
    return call(bin_query(rid_++, session));
  }
  WireReply finish(std::uint64_t session) override {
    return call(bin_finish(rid_++, session));
  }
  WireReply close(std::uint64_t session) override {
    return call(bin_close(rid_++, session));
  }
  WireReply stats() override { return call(bin_stats(rid_++)); }

 private:
  WireReply call(const std::string& payload) {
    const BinResponse resp = client_.call(payload);
    WireReply out;
    switch (resp.status) {
      case BinStatus::kOk:
        out.ok = true;
        break;
      case BinStatus::kReject:
        out.reject = to_string(static_cast<Submit>(resp.verdict));
        out.error = "rejected: " + out.reject;
        return out;
      case BinStatus::kError:
        out.error = resp.error;
        return out;
    }
    out.session = resp.session;
    out.exposition = resp.text;
    SessionOutcome& r = out.result;
    r.jobs = resp.jobs;
    r.total_flow = resp.total_flow;
    r.weighted_flow = resp.weighted_flow;
    r.fractional_flow = resp.fractional_flow;
    r.makespan = resp.makespan;
    r.decisions = resp.decisions;
    r.events = resp.events;
    return out;
  }

  BinClient client_;
  std::uint64_t rid_ = 0;
};

// ---- the deterministic workload -------------------------------------------

/// Everything a session will send, decided up front from (cfg, index) —
/// never from the worker that happens to drive it.
struct SessionPlan {
  int index = 0;
  int admissions = 0;
  std::uint64_t key = 0;  ///< consistent-hash routing key (0 = default)
};

double release_time(const LoadgenConfig& cfg, const SessionPlan& plan,
                    int i) {
  const double rate = cfg.rate > 0.0 ? cfg.rate : 1.0;
  switch (cfg.shape) {
    case LoadShape::kUniform:
    case LoadShape::kZipf:
      // zipf skews *how many* jobs a session gets, not their spacing.
      return static_cast<double>(i) / rate;
    case LoadShape::kBurst:
      return burst_release(i, cfg.burst_per,
                           static_cast<double>(cfg.burst_per) / rate);
    case LoadShape::kDiurnal:
      return diurnal_release(i, plan.admissions,
                             static_cast<double>(plan.admissions) / rate,
                             cfg.diurnal_peak);
  }
  return 0.0;
}

std::vector<SessionPlan> plan_fleet(const LoadgenConfig& cfg, int shards) {
  const auto n = static_cast<std::size_t>(cfg.sessions);
  std::vector<SessionPlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    plans[i].index = static_cast<int>(i);
    plans[i].admissions = cfg.admissions;
  }
  if (cfg.shape == LoadShape::kZipf) {
    const std::vector<int> counts = zipf_admission_counts(
        n, cfg.sessions * cfg.admissions, cfg.zipf_theta);
    for (std::size_t i = 0; i < n; ++i) plans[i].admissions = counts[i];
  }
  if (cfg.shape == LoadShape::kBurst) {
    // Adversarial routing: every session keys itself onto the shard
    // that owns key 1 — the ring's worst case, N-1 shards idle.
    const int target = consistent_shard(1, shards);
    std::uint64_t k = 1;
    for (std::size_t i = 0; i < n; ++i) {
      k = key_for_shard(target, shards, k);
      plans[i].key = k++;
    }
  }
  return plans;
}

// ---- the driver -----------------------------------------------------------

/// One timed request with reject-retry. Latencies go to the local batch
/// (merged once per worker); throws on errors or exhausted retries.
WireReply timed(const std::function<WireReply()>& op, Shared& shared,
                std::vector<double>& local_lat) {
  for (int attempt = 0;; ++attempt) {
    const double t0 = obs::monotonic_seconds();
    const WireReply reply = op();
    const double ms = (obs::monotonic_seconds() - t0) * 1e3;
    if (shared.requests != nullptr) shared.requests->inc();
    if (shared.latency_ms != nullptr) shared.latency_ms->observe(ms);
    local_lat.push_back(ms);
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.result.requests;
    }
    if (reply.ok) return reply;
    if (reply.reject.empty()) {
      throw std::runtime_error("server error: " + reply.error);
    }
    // Backpressure (includes a migration's draining window): count,
    // back off, retry the same request.
    if (shared.rejects != nullptr) shared.rejects->inc();
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.result.rejects;
    }
    if (attempt >= kMaxRetries) {
      throw std::runtime_error("request rejected " +
                               std::to_string(kMaxRetries) + " times (" +
                               reply.reject + ")");
    }
    backoff_sleep(attempt);
  }
}

/// Drive one worker's block of sessions over a single connection. All
/// sessions open first (the whole fleet is concurrently live), then
/// admissions proceed round-robin across the block, then each session
/// is queried, finished and closed.
void drive_block(const LoadgenConfig& cfg,
                 const std::vector<SessionPlan>& plans, std::size_t first,
                 std::size_t count, Shared& shared) {
  std::vector<double> local_lat;
  std::unique_ptr<WireClient> wire;
  if (cfg.binary) {
    wire = std::make_unique<BinWire>(cfg.socket_path, cfg.connect_timeout);
  } else {
    wire = std::make_unique<JsonWire>(cfg.socket_path, cfg.connect_timeout);
  }

  struct Live {
    const SessionPlan* plan = nullptr;
    std::uint64_t rng = 0;
    std::uint64_t session = 0;
    double t0 = 0.0;
  };
  std::vector<Live> live(count);
  int max_admissions = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const SessionPlan& plan = plans[first + k];
    live[k].plan = &plan;
    live[k].rng = exec::task_seed(cfg.seed,
                                  static_cast<std::uint64_t>(plan.index));
    live[k].t0 = obs::monotonic_seconds();
    const WireReply opened = timed(
        [&] { return wire->open(cfg.policy, cfg.machines, plan.key); },
        shared, local_lat);
    if (opened.session == 0) {
      throw std::runtime_error("open returned no session");
    }
    live[k].session = opened.session;
    max_admissions = std::max(max_admissions, plan.admissions);
  }

  for (int i = 0; i < max_admissions; ++i) {
    for (Live& s : live) {
      if (i >= s.plan->admissions) continue;
      const double release = release_time(cfg, *s.plan, i);
      const double size = 0.5 + 1.5 * next_unit(s.rng);
      const double alpha = 0.25 + 0.5 * next_unit(s.rng);
      timed(
          [&] {
            return wire->admit(s.session, static_cast<std::uint32_t>(i),
                               release, size, alpha);
          },
          shared, local_lat);
      if (cfg.advance_every > 0 && (i + 1) % cfg.advance_every == 0) {
        timed([&] { return wire->advance(s.session, release); }, shared,
              local_lat);
      }
      if (cfg.stats_every > 0 && (i + 1) % cfg.stats_every == 0) {
        // Live-telemetry probe riding inside the load: the exposition
        // writer races every hot strand of the server while we scrape.
        const WireReply stats =
            timed([&] { return wire->stats(); }, shared, local_lat);
        if (stats.exposition.empty()) {
          throw std::runtime_error("stats returned an empty exposition");
        }
        std::lock_guard<std::mutex> lock(shared.mu);
        ++shared.result.stats_scrapes;
      }
    }
  }

  for (Live& s : live) {
    timed([&] { return wire->query(s.session); }, shared, local_lat);
    const WireReply fin =
        timed([&] { return wire->finish(s.session); }, shared, local_lat);
    timed([&] { return wire->close(s.session); }, shared, local_lat);
    SessionOutcome out = fin.result;
    out.session_index = s.plan->index;
    out.wall_seconds = obs::monotonic_seconds() - s.t0;
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.result.sessions[static_cast<std::size_t>(s.plan->index)] =
        std::move(out);
  }

  std::lock_guard<std::mutex> lock(shared.mu);
  shared.result.latencies_ms.insert(shared.result.latencies_ms.end(),
                                    local_lat.begin(), local_lat.end());
}

/// Ask the server how many shards it runs (the NDJSON "cluster" verb —
/// the admin path works regardless of what the workers speak).
int probe_shards(const LoadgenConfig& cfg) {
  Client admin(cfg.socket_path, cfg.connect_timeout);
  const std::string resp = admin.request(R"({"op":"cluster","id":0})");
  obs::JsonValue v;
  std::string err;
  if (!obs::json_parse(resp, v, &err) || !v.bool_or("ok", false)) {
    throw std::runtime_error("cluster probe failed: " + resp);
  }
  const int shards = static_cast<int>(v.number_or("shards", 1.0));
  return shards > 0 ? shards : 1;
}

}  // namespace

std::uint64_t LoadgenResult::jobs_completed() const {
  std::uint64_t n = 0;
  for (const SessionOutcome& s : sessions) n += s.jobs;
  return n;
}

double LoadgenResult::total_flow() const {
  double f = 0.0;
  for (const SessionOutcome& s : sessions) f += s.total_flow;
  return f;
}

double LoadgenResult::latency_quantile_ms(double q) const {
  if (latencies_ms.empty()) return 0.0;
  std::vector<double> sorted = latencies_ms;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

LoadgenResult run_loadgen(const LoadgenConfig& cfg) {
  if (cfg.socket_path.empty()) {
    throw std::runtime_error("loadgen requires a socket path");
  }
  if (cfg.sessions < 1 || cfg.admissions < 1) {
    throw std::runtime_error("loadgen needs sessions >= 1, admissions >= 1");
  }
  if (cfg.burst_per < 1 || !(cfg.diurnal_peak >= 1.0)) {
    throw std::runtime_error(
        "loadgen needs burst_per >= 1, diurnal_peak >= 1");
  }

  Shared shared;
  if (cfg.metrics != nullptr) {
    shared.requests = &cfg.metrics->counter("serve.client.requests");
    shared.rejects = &cfg.metrics->counter("serve.client.rejects");
    shared.errors = &cfg.metrics->counter("serve.client.errors");
    shared.latency_ms = &cfg.metrics->histogram("serve.client.latency_ms",
                                                latency_bounds_ms());
  }
  shared.result.sessions.resize(static_cast<std::size_t>(cfg.sessions));

  const double t0 = obs::monotonic_seconds();
  const int shards = probe_shards(cfg);
  shared.result.shards = shards;
  const std::vector<SessionPlan> plans = plan_fleet(cfg, shards);

  int workers = cfg.workers;
  if (workers <= 0) workers = std::min(cfg.sessions, 8);
  workers = std::min(workers, cfg.sessions);

  exec::ThreadPool pool(exec::ThreadPool::Config{workers, cfg.metrics});
  std::vector<std::future<void>> tasks;
  tasks.reserve(static_cast<std::size_t>(workers));
  const auto n = static_cast<std::size_t>(cfg.sessions);
  const std::size_t per = n / static_cast<std::size_t>(workers);
  const std::size_t extra = n % static_cast<std::size_t>(workers);
  std::size_t first = 0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t count =
        per + (static_cast<std::size_t>(w) < extra ? 1 : 0);
    tasks.push_back(pool.submit([&cfg, &plans, &shared, first, count] {
      try {
        drive_block(cfg, plans, first, count, shared);
      } catch (const std::exception&) {
        if (shared.errors != nullptr) shared.errors->inc();
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          ++shared.result.errors;
        }
        throw;
      }
    }));
    first += count;
  }
  std::string first_error;
  for (auto& t : tasks) {
    try {
      t.get();
    } catch (const std::exception& e) {
      if (first_error.empty()) first_error = e.what();
    }
  }
  pool.shutdown(true);

  if (cfg.shutdown_after) {
    Client admin(cfg.socket_path, cfg.connect_timeout);
    (void)admin.request(R"({"op":"shutdown","id":0})");
  }

  shared.result.wall_seconds = obs::monotonic_seconds() - t0;
  if (!first_error.empty() && shared.result.errors == 0) {
    // A connect failure throws before any request is counted.
    shared.result.errors = 1;
  }
  LoadgenResult out = std::move(shared.result);
  if (!first_error.empty()) {
    // Sessions that failed leave zeroed outcomes; callers treat
    // errors > 0 as a failed soak. Surface the first cause.
    out.sessions.erase(
        std::remove_if(out.sessions.begin(), out.sessions.end(),
                       [](const SessionOutcome& s) { return s.jobs == 0; }),
        out.sessions.end());
  }
  return out;
}

}  // namespace parsched::serve
