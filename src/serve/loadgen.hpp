// parsched — the serve load generator.
//
// run_loadgen() replays a deterministic synthetic arrival log against a
// running `parsched serve --socket` instance: N concurrent client
// sessions (one connection + one protocol session each, driven from the
// exec::ThreadPool), each admitting a seeded stream of jobs and
// advancing its replay clock along the arrivals, then finishing and
// closing. Per-request round-trip latencies land in the metrics
// registry as the serve.client.latency_ms histogram, together with
// serve.client.{requests,rejects,errors} counters — the payload of the
// BENCH_serve_loadgen.json report the CI soak leg validates.
//
// Backpressure discipline: a load rejection ("reject" in the response —
// queue full, draining) is counted and retried with backoff; a protocol
// error (ok=false without "reject") is counted as an error and fails
// the session. The soak invariant is rejects >= 0 but errors == 0 —
// the server under overload must shed load, never wedge or corrupt.
//
// Job streams are derived with exec::task_seed(seed, session), so a
// given (seed, sessions, admissions, rate) configuration produces the
// same simulated workload — and the same total flow — every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace parsched::serve {

struct LoadgenConfig {
  std::string socket_path;
  int sessions = 8;
  int admissions = 200;  ///< jobs per session
  double rate = 64.0;    ///< arrivals per simulated second
  int advance_every = 16;  ///< advance the replay clock every k admissions
  std::string policy = "equi";
  int machines = 4;
  std::uint64_t seed = 1;
  double connect_timeout = 10.0;
  bool shutdown_after = false;  ///< send {"op":"shutdown"} when done
  /// Every k admissions, each session also scrapes {"op":"stats"} and
  /// checks the exposition payload is non-empty — a live-telemetry probe
  /// riding inside the load (the TSan soak uses it to race the
  /// exposition writer against hot strands). 0 disables.
  int stats_every = 0;
  obs::MetricsRegistry* metrics = nullptr;  ///< borrowed; may be null
};

/// Outcome of one session's finished run (parsed from the protocol).
struct SessionOutcome {
  int session_index = 0;
  std::uint64_t jobs = 0;
  double total_flow = 0.0;
  double weighted_flow = 0.0;
  double fractional_flow = 0.0;
  double makespan = 0.0;
  std::uint64_t decisions = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;  ///< client-side session wall time
};

struct LoadgenResult {
  std::uint64_t requests = 0;
  std::uint64_t rejects = 0;  ///< backpressure responses (retried)
  std::uint64_t errors = 0;   ///< protocol/session failures
  std::uint64_t stats_scrapes = 0;  ///< successful mid-run stats probes
  double wall_seconds = 0.0;
  std::vector<SessionOutcome> sessions;  ///< by session index

  [[nodiscard]] std::uint64_t jobs_completed() const;
  [[nodiscard]] double total_flow() const;
};

/// Run the generator; throws std::runtime_error when the server cannot
/// be reached at all.
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& cfg);

}  // namespace parsched::serve
