// parsched — the serve load generator.
//
// run_loadgen() replays a deterministic synthetic arrival log against a
// running `parsched serve --socket` instance. The fleet is N protocol
// sessions, all open concurrently, driven by W worker threads (one
// connection each, sessions interleaved round-robin) — so 10^3–10^4
// concurrent sessions need only a handful of sockets and threads.
// Per-request round-trip latencies land in the metrics registry as the
// serve.client.latency_ms histogram and, raw, in
// LoadgenResult::latencies_ms (exact quantiles for the cluster bench),
// together with serve.client.{requests,rejects,errors} counters.
//
// Traffic shapes (serve/shapes.hpp): `uniform` is the PR-4 fleet,
// `zipf` skews per-session job counts by a Zipf(theta) popularity law,
// `burst` keys every session onto one shard and releases jobs in
// volleys, `diurnal` ramps the arrival rate to a peak and back. The
// simulated workload — and therefore the total flow — depends only on
// (seed, sessions, admissions, rate, shape parameters), never on the
// worker count or the wire protocol, so a run is comparable across
// --workers settings and across NDJSON vs PBIN (--binary).
//
// Backpressure discipline: a load rejection (queue full, draining —
// including the transient kDraining window of a live migration) is
// counted and retried with backoff; a protocol error is counted and
// fails the session. The soak invariant is rejects >= 0 but
// errors == 0 — the server under overload must shed load, never wedge
// or corrupt.
//
// Job streams are derived with exec::task_seed(seed, session), so a
// given configuration produces the same workload every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/shapes.hpp"

namespace parsched::serve {

struct LoadgenConfig {
  std::string socket_path;
  int sessions = 8;
  int admissions = 200;  ///< jobs per session (fleet mean under zipf)
  double rate = 64.0;    ///< arrivals per simulated second
  int advance_every = 16;  ///< advance the replay clock every k admissions
  std::string policy = "equi";
  int machines = 4;
  std::uint64_t seed = 1;
  double connect_timeout = 10.0;
  bool shutdown_after = false;  ///< send {"op":"shutdown"} when done
  /// Every k admissions, each session also scrapes {"op":"stats"} and
  /// checks the exposition payload is non-empty — a live-telemetry probe
  /// riding inside the load (the TSan soak uses it to race the
  /// exposition writer against hot strands). 0 disables.
  int stats_every = 0;
  obs::MetricsRegistry* metrics = nullptr;  ///< borrowed; may be null

  LoadShape shape = LoadShape::kUniform;
  double zipf_theta = 1.0;   ///< zipf: popularity exponent (k * 0.5)
  int burst_per = 32;        ///< burst: jobs per volley
  double diurnal_peak = 4.0; ///< diurnal: peak/trough rate ratio (>= 1)
  /// Worker threads (connections). 0 picks min(sessions, 8). Totals are
  /// worker-count independent; only wall time and latency vary.
  int workers = 0;
  bool binary = false;  ///< drive PBIN frames instead of NDJSON lines
};

/// Outcome of one session's finished run (parsed from the protocol).
struct SessionOutcome {
  int session_index = 0;
  std::uint64_t jobs = 0;
  double total_flow = 0.0;
  double weighted_flow = 0.0;
  double fractional_flow = 0.0;
  double makespan = 0.0;
  std::uint64_t decisions = 0;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;  ///< client-side session wall time
};

struct LoadgenResult {
  std::uint64_t requests = 0;
  std::uint64_t rejects = 0;  ///< backpressure responses (retried)
  std::uint64_t errors = 0;   ///< protocol/session failures
  std::uint64_t stats_scrapes = 0;  ///< successful mid-run stats probes
  double wall_seconds = 0.0;
  int shards = 1;  ///< server shard count (the "cluster" verb)
  std::vector<SessionOutcome> sessions;  ///< by session index
  /// Every timed round-trip, unordered — exact client-side quantiles
  /// for the serve_cluster bench tables.
  std::vector<double> latencies_ms;

  [[nodiscard]] std::uint64_t jobs_completed() const;
  [[nodiscard]] double total_flow() const;
  /// Exact q-quantile (nearest-rank) of latencies_ms; 0 when empty.
  [[nodiscard]] double latency_quantile_ms(double q) const;
};

/// Run the generator; throws std::runtime_error when the server cannot
/// be reached at all.
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& cfg);

}  // namespace parsched::serve
