#include "serve/binproto.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/expose.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"
#include "speedup/curve.hpp"
#include "util/fsio.hpp"

namespace parsched::serve {

namespace {

// ---- shared field codecs (same layout as the PSNP snapshot curves) --------

void put_curve(WireWriter& w, const SpeedupCurve& c) {
  w.u8(static_cast<std::uint8_t>(c.kind()));
  w.f64(c.alpha());
  if (c.kind() == SpeedupCurve::Kind::kPiecewiseLinear) {
    const auto& knots = c.knots();
    w.size(knots.size());
    for (const auto& [x, y] : knots) {
      w.f64(x);
      w.f64(y);
    }
  }
}

SpeedupCurve get_curve(WireReader& r) {
  const auto kind = static_cast<SpeedupCurve::Kind>(r.u8());
  const double alpha = r.f64();
  switch (kind) {
    case SpeedupCurve::Kind::kFullyParallel:
      return SpeedupCurve::fully_parallel();
    case SpeedupCurve::Kind::kSequential:
      return SpeedupCurve::sequential();
    case SpeedupCurve::Kind::kPowerLaw:
      return SpeedupCurve::power_law(alpha);
    case SpeedupCurve::Kind::kPiecewiseLinear: {
      const std::size_t n = r.size();
      std::vector<std::pair<double, double>> knots;
      knots.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = r.f64();
        const double y = r.f64();
        knots.emplace_back(x, y);
      }
      return SpeedupCurve::piecewise_linear(std::move(knots));
    }
  }
  r.fail("unknown speedup-curve kind");
}

void put_job(WireWriter& w, const Job& j) {
  w.u32(j.id);
  w.f64(j.release);
  w.f64(j.size);
  w.f64(j.weight);
  put_curve(w, j.curve);
  w.size(j.phases.size());
  for (const JobPhase& p : j.phases) {
    w.f64(p.work);
    put_curve(w, p.curve);
  }
}

Job get_job(WireReader& r) {
  Job j;
  j.id = r.u32();
  j.release = r.f64();
  j.size = r.f64();
  j.weight = r.f64();
  j.curve = get_curve(r);
  const std::size_t n = r.size();
  j.phases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    JobPhase p;
    p.work = r.f64();
    p.curve = get_curve(r);
    j.phases.push_back(std::move(p));
  }
  return j;
}

// ---- response builders ----------------------------------------------------

WireWriter response_head(BinStatus status, std::uint64_t rid, BinOp op) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(rid);
  w.u8(static_cast<std::uint8_t>(op));
  return w;
}

std::string error_payload(std::uint64_t rid, BinOp op,
                          const std::string& message) {
  WireWriter w = response_head(BinStatus::kError, rid, op);
  w.str(message);
  return w.take();
}

std::string reject_payload(std::uint64_t rid, BinOp op, Submit verdict) {
  WireWriter w = response_head(BinStatus::kReject, rid, op);
  w.u8(static_cast<std::uint8_t>(verdict));
  return w.take();
}

std::string ok_payload(std::uint64_t rid, BinOp op) {
  return response_head(BinStatus::kOk, rid, op).take();
}

std::string session_payload(std::uint64_t rid, BinOp op, SessionId sid,
                            int shard) {
  WireWriter w = response_head(BinStatus::kOk, rid, op);
  w.u64(sid);
  w.u32(static_cast<std::uint32_t>(shard));
  return w.take();
}

void put_result_block(WireWriter& w, const SimResult& r) {
  w.u64(static_cast<std::uint64_t>(r.records.size()));
  w.f64(r.total_flow);
  w.f64(r.weighted_flow);
  w.f64(r.fractional_flow);
  w.f64(r.makespan);
  w.u64(r.decisions);
  w.u64(r.events);
}

std::string query_payload(std::uint64_t rid, const Session& s) {
  WireWriter w = response_head(BinStatus::kOk, rid, BinOp::kQuery);
  w.str(s.policy_name());
  w.f64(s.time());
  w.f64(s.frontier());
  w.u64(static_cast<std::uint64_t>(s.alive_count()));
  w.u64(static_cast<std::uint64_t>(s.pending_count()));
  w.u8(s.finished() ? 1 : 0);
  put_result_block(w, s.partial());
  return w.take();
}

std::string finish_payload(std::uint64_t rid, const SimResult& r) {
  WireWriter w = response_head(BinStatus::kOk, rid, BinOp::kFinish);
  put_result_block(w, r);
  w.size(r.records.size());
  for (const JobRecord& rec : r.records) {
    w.u32(rec.job.id);
    w.f64(rec.job.release);
    w.f64(rec.completion);
  }
  return w.take();
}

std::string text_payload(std::uint64_t rid, BinOp op,
                         const std::string& text) {
  WireWriter w = response_head(BinStatus::kOk, rid, op);
  w.str(text);
  return w.take();
}

/// Read exactly `n` bytes (blocking), riding out EINTR; throws on EOF.
void recv_exact(int fd, char* out, std::size_t n, const char* what) {
  while (n > 0) {
    const ssize_t got = ::recv(fd, out, n, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      throw std::runtime_error(std::string("server connection lost (") +
                               what + ")");
    }
    out += got;
    n -= static_cast<std::size_t>(got);
  }
}

}  // namespace

// ---- framing --------------------------------------------------------------

std::string frame(std::string_view payload) {
  WireWriter w;
  w.str(payload);  // u32 length prefix + bytes — exactly the frame shape
  return w.take();
}

std::string encode_hello(std::uint32_t version) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(kBinMagic[0]));
  w.u8(static_cast<std::uint8_t>(kBinMagic[1]));
  w.u8(static_cast<std::uint8_t>(kBinMagic[2]));
  w.u8(static_cast<std::uint8_t>(kBinMagic[3]));
  w.u32(version);
  return w.take();
}

std::uint32_t decode_hello(std::string_view hello) {
  WireReader r(hello, "hello");
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kBinMagic, sizeof(kBinMagic)) != 0) {
    r.fail("bad magic (not a PBIN hello)");
  }
  return r.u32();
}

bool FrameBuffer::next(std::string& payload) {
  if (buf_.size() < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buf_[static_cast<std::size_t>(i)]))
           << (8 * i);
  }
  if (len > kMaxFramePayload) {
    throw std::invalid_argument("frame payload of " + std::to_string(len) +
                                " bytes exceeds the " +
                                std::to_string(kMaxFramePayload) +
                                "-byte cap");
  }
  if (buf_.size() < 4 + static_cast<std::size_t>(len)) return false;
  payload.assign(buf_, 4, len);
  buf_.erase(0, 4 + static_cast<std::size_t>(len));
  return true;
}

// ---- request encoders -----------------------------------------------------

namespace {
WireWriter request_head(BinOp op, std::uint64_t rid) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(rid);
  return w;
}
}  // namespace

std::string bin_ping(std::uint64_t rid) {
  return request_head(BinOp::kPing, rid).take();
}

std::string bin_open(std::uint64_t rid, const std::string& policy,
                     int machines, double speed, std::uint64_t key) {
  WireWriter w = request_head(BinOp::kOpen, rid);
  w.str(policy);
  w.u32(static_cast<std::uint32_t>(machines));
  w.f64(speed);
  w.u64(key);
  return w.take();
}

std::string bin_admit(std::uint64_t rid, std::uint64_t session,
                      const Job& job) {
  WireWriter w = request_head(BinOp::kAdmit, rid);
  w.u64(session);
  put_job(w, job);
  return w.take();
}

std::string bin_advance(std::uint64_t rid, std::uint64_t session,
                        double to) {
  WireWriter w = request_head(BinOp::kAdvance, rid);
  w.u64(session);
  w.f64(to);
  return w.take();
}

std::string bin_query(std::uint64_t rid, std::uint64_t session) {
  WireWriter w = request_head(BinOp::kQuery, rid);
  w.u64(session);
  return w.take();
}

std::string bin_snapshot(std::uint64_t rid, std::uint64_t session,
                         const std::string& path) {
  WireWriter w = request_head(BinOp::kSnapshot, rid);
  w.u64(session);
  w.str(path);
  return w.take();
}

std::string bin_restore(std::uint64_t rid, const std::string& path) {
  WireWriter w = request_head(BinOp::kRestore, rid);
  w.str(path);
  return w.take();
}

std::string bin_finish(std::uint64_t rid, std::uint64_t session) {
  WireWriter w = request_head(BinOp::kFinish, rid);
  w.u64(session);
  return w.take();
}

std::string bin_close(std::uint64_t rid, std::uint64_t session) {
  WireWriter w = request_head(BinOp::kClose, rid);
  w.u64(session);
  return w.take();
}

std::string bin_stats(std::uint64_t rid) {
  return request_head(BinOp::kStats, rid).take();
}

std::string bin_dump(std::uint64_t rid, const std::string& path) {
  WireWriter w = request_head(BinOp::kDump, rid);
  w.str(path);
  return w.take();
}

std::string bin_shutdown(std::uint64_t rid) {
  return request_head(BinOp::kShutdown, rid).take();
}

std::string bin_migrate(std::uint64_t rid, std::uint64_t session,
                        int shard) {
  WireWriter w = request_head(BinOp::kMigrate, rid);
  w.u64(session);
  w.u32(static_cast<std::uint32_t>(shard));
  return w.take();
}

std::string bin_evacuate(std::uint64_t rid, int shard) {
  WireWriter w = request_head(BinOp::kEvacuate, rid);
  w.u32(static_cast<std::uint32_t>(shard));
  return w.take();
}

std::string bin_cluster(std::uint64_t rid) {
  return request_head(BinOp::kCluster, rid).take();
}

// ---- response decoder -----------------------------------------------------

BinResponse parse_bin_response(std::string_view payload) {
  WireReader r(payload, "frame");
  BinResponse out;
  out.status = static_cast<BinStatus>(r.u8());
  out.rid = r.u64();
  out.op = static_cast<BinOp>(r.u8());
  if (out.status == BinStatus::kError) {
    out.error = r.str();
    return out;
  }
  if (out.status == BinStatus::kReject) {
    out.verdict = r.u8();
    return out;
  }
  switch (out.op) {
    case BinOp::kPing:
    case BinOp::kAdmit:
    case BinOp::kAdvance:
    case BinOp::kSnapshot:
    case BinOp::kClose:
    case BinOp::kShutdown:
    case BinOp::kMigrate:
      break;
    case BinOp::kOpen:
    case BinOp::kRestore:
      out.session = r.u64();
      out.shard = static_cast<int>(r.u32());
      break;
    case BinOp::kQuery: {
      out.policy = r.str();
      out.time = r.f64();
      out.frontier = r.f64();
      out.alive = r.u64();
      out.pending = r.u64();
      out.finished = r.u8() != 0;
      out.jobs = r.u64();
      out.total_flow = r.f64();
      out.weighted_flow = r.f64();
      out.fractional_flow = r.f64();
      out.makespan = r.f64();
      out.decisions = r.u64();
      out.events = r.u64();
      break;
    }
    case BinOp::kFinish: {
      out.jobs = r.u64();
      out.total_flow = r.f64();
      out.weighted_flow = r.f64();
      out.fractional_flow = r.f64();
      out.makespan = r.f64();
      out.decisions = r.u64();
      out.events = r.u64();
      const std::size_t n = r.size();
      out.records.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        BinResponse::Record rec;
        rec.job = r.u32();
        rec.release = r.f64();
        rec.completion = r.f64();
        out.records.push_back(rec);
      }
      break;
    }
    case BinOp::kStats:
    case BinOp::kDump:
      out.text = r.str();
      break;
    case BinOp::kEvacuate:
      out.migrated = static_cast<int>(r.u32());
      break;
    case BinOp::kCluster: {
      out.shards = static_cast<int>(r.u32());
      out.sessions = r.u64();
      for (int i = 0; i < out.shards; ++i) {
        out.shard_sessions.push_back(r.u32());
        out.in_ring.push_back(r.u8() != 0);
      }
      break;
    }
  }
  if (!r.done()) r.fail("trailing bytes after response payload");
  return out;
}

// ---- server-side frame handler --------------------------------------------

bool ProtocolHandler::handle_frame(std::string_view payload, WriteFn write) {
  std::uint64_t rid = 0;
  BinOp op = BinOp::kPing;
  try {
    WireReader r(payload, "frame");
    const std::uint8_t opb = r.u8();
    rid = r.u64();
    if (opb > static_cast<std::uint8_t>(BinOp::kCluster)) {
      write(error_payload(rid, BinOp::kPing,
                          "unknown op: " + std::to_string(opb)));
      return true;
    }
    op = static_cast<BinOp>(opb);

    switch (op) {
      case BinOp::kPing:
        write(ok_payload(rid, op));
        return true;
      case BinOp::kStats: {
        if (cluster_.config().metrics == nullptr) {
          write(error_payload(rid, op,
                              "stats: server has no metrics registry"));
          return true;
        }
        write(text_payload(
            rid, op, obs::exposition_text(cluster_.merged_snapshot())));
        return true;
      }
      case BinOp::kDump: {
        const obs::FlightRecorder* rec = cluster_.config().recorder;
        if (rec == nullptr) {
          write(error_payload(rid, op,
                              "dump: server has no flight recorder"));
          return true;
        }
        std::ostringstream dump;
        rec->dump_jsonl(dump, "dump_verb");
        const std::string path = r.str();
        if (!path.empty()) {
          auto out = open_output(path, "flight-recorder dump");
          out << dump.str();
          finish_output(out, path);
          write(ok_payload(rid, op));
        } else {
          write(text_payload(rid, op, dump.str()));
        }
        return true;
      }
      case BinOp::kShutdown:
        cluster_.drain();
        write(ok_payload(rid, op));
        return false;
      case BinOp::kOpen: {
        Session::Config scfg;
        scfg.policy = r.str();
        scfg.machines = static_cast<int>(r.u32());
        scfg.speed = r.f64();
        const std::uint64_t key = r.u64();
        SessionId sid = 0;
        int shard = -1;
        const Submit verdict = cluster_.open(scfg, sid, key, &shard);
        if (verdict != Submit::kAccepted) {
          write(reject_payload(rid, op, verdict));
          return true;
        }
        write(session_payload(rid, op, sid, shard));
        return true;
      }
      case BinOp::kRestore: {
        const std::string path = r.str();
        if (path.empty()) {
          write(error_payload(rid, op, "restore requires path"));
          return true;
        }
        auto session = Session::restore(read_snapshot_file(path), nullptr);
        SessionId sid = 0;
        int shard = -1;
        const Submit verdict =
            cluster_.adopt(std::move(session), sid, 0, &shard);
        if (verdict != Submit::kAccepted) {
          write(reject_payload(rid, op, verdict));
          return true;
        }
        write(session_payload(rid, op, sid, shard));
        return true;
      }
      case BinOp::kEvacuate: {
        const int shard = static_cast<int>(r.u32());
        const int migrated = cluster_.evacuate(shard);
        WireWriter w = response_head(BinStatus::kOk, rid, op);
        w.u32(static_cast<std::uint32_t>(migrated));
        write(w.take());
        return true;
      }
      case BinOp::kCluster: {
        WireWriter w = response_head(BinStatus::kOk, rid, op);
        const int n = cluster_.shards();
        w.u32(static_cast<std::uint32_t>(n));
        w.u64(static_cast<std::uint64_t>(cluster_.session_count()));
        for (int i = 0; i < n; ++i) {
          w.u32(static_cast<std::uint32_t>(cluster_.session_count(i)));
          w.u8(cluster_.shard_in_ring(i) ? 1 : 0);
        }
        write(w.take());
        return true;
      }
      default:
        break;  // session-addressed ops below
    }

    const SessionId sid = r.u64();
    if (op == BinOp::kClose) {
      const Submit verdict = cluster_.close(sid);
      if (verdict != Submit::kAccepted) {
        write(reject_payload(rid, op, verdict));
        return true;
      }
      write(ok_payload(rid, op));
      return true;
    }
    if (op == BinOp::kMigrate) {
      const int shard = static_cast<int>(r.u32());
      const Submit verdict = cluster_.migrate(sid, shard);
      if (verdict != Submit::kAccepted) {
        write(reject_payload(rid, op, verdict));
        return true;
      }
      write(ok_payload(rid, op));
      return true;
    }

    std::function<void(Session&)> task;
    if (op == BinOp::kAdmit) {
      Job job = get_job(r);
      task = [rid, write, job = std::move(job)](Session& s) {
        s.admit(job);
        write(ok_payload(rid, BinOp::kAdmit));
      };
    } else if (op == BinOp::kAdvance) {
      const double to = r.f64();
      task = [rid, write, to](Session& s) {
        s.advance(to);
        write(ok_payload(rid, BinOp::kAdvance));
      };
    } else if (op == BinOp::kQuery) {
      task = [rid, write](Session& s) { write(query_payload(rid, s)); };
    } else if (op == BinOp::kSnapshot) {
      const std::string path = r.str();
      if (path.empty()) {
        write(error_payload(rid, op, "snapshot requires path"));
        return true;
      }
      task = [rid, write, path](Session& s) {
        const std::string blob = s.snapshot();
        auto out = open_output(path, "session snapshot");
        out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
        finish_output(out, path);
        write(ok_payload(rid, BinOp::kSnapshot));
      };
    } else {  // kFinish
      task = [rid, write](Session& s) {
        s.finish();
        write(finish_payload(rid, s.result()));
      };
    }

    const Submit verdict = cluster_.submit(
        sid, [rid, op, write, task = std::move(task)](Session& s) {
          try {
            task(s);
          } catch (const std::exception& e) {
            write(error_payload(rid, op, e.what()));
          }
        });
    if (verdict != Submit::kAccepted) {
      write(reject_payload(rid, op, verdict));
    }
  } catch (const std::exception& e) {
    write(error_payload(rid, op, e.what()));
  }
  return true;
}

// ---- blocking client ------------------------------------------------------

BinClient::BinClient(const std::string& path, double timeout_seconds,
                     std::uint32_t version) {
  fd_ = connect_unix_client(path, timeout_seconds);
  const std::string hello = encode_hello(version);
  if (!send_all(fd_, hello.data(), hello.size())) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("server connection lost (hello)");
  }
  char reply[kBinHelloSize];
  try {
    recv_exact(fd_, reply, sizeof(reply), "hello");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  negotiated_ = decode_hello(std::string_view(reply, sizeof(reply)));
  if (negotiated_ == 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("server rejected PBIN version " +
                             std::to_string(version));
  }
}

BinClient::~BinClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string BinClient::request(const std::string& payload) {
  const std::string framed = frame(payload);
  if (!send_all(fd_, framed.data(), framed.size())) {
    throw std::runtime_error("server connection lost (send)");
  }
  std::string out;
  while (!frames_.next(out)) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("server connection lost (recv)");
    }
    frames_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  return out;
}

}  // namespace parsched::serve
