// parsched — the sharded serving plane.
//
// A Cluster shards sessions across N independent shard workers. Each
// shard is a full serve::Server — its own exec::ThreadPool, its own
// strand table, its own MetricsRegistry — so shards share no mutable
// state except the cluster's routing table, and a wedged or saturated
// shard cannot stall its siblings' pools.
//
// Routing is consistent-hash: every session carries a routing key
// (client-supplied, or defaulted to the session id), hashed onto a ring
// of kVirtualNodes splitmix-derived points per shard. Removing a shard
// from the ring (evacuate) remaps only the keys that hashed to it; all
// other sessions keep their placement. shard_for_key() is a pure
// function of (key, ring membership) — clients that know the shard
// count can predict placement, which is how loadgen's adversarial
// all-one-shard burst aims its traffic.
//
// Backpressure stays explicit and per-shard: open/submit/close answer
// with the same Submit verdicts as Server, and every verdict is
// non-blocking. The cluster adds one cluster-wide session cap on top of
// the per-shard queues (Submit::kSessionCap), and a kDraining verdict
// while a session is mid-migration — callers retry exactly as they
// would for a full queue.
//
// Live migration (the tentpole guarantee): migrate() drains a session's
// strand on the source shard, snapshots it with the versioned PSNP
// encoder, restores the blob on the target shard and atomically flips
// the routing entry — all while the cluster keeps serving. Because the
// snapshot runs *on the strand* (after every previously accepted op,
// before any later one — later submits reject kDraining and retry), the
// migrated session's continuation is bit-identical to an unmigrated
// run: same doubles, same order. evacuate() applies this to a whole
// shard: take it out of the ring, migrate every live session to its new
// ring position, then drain the emptied Server — the "kill a shard
// mid-soak" operation of the CI leg.
//
// Metrics: per-shard registries are merged into the exposition under
// "serve.shard<i>.*" (e.g. serve.shard0.requests), aggregated totals
// keep the plain Server names, and cluster-level counters live under
// "serve.cluster.*" (opened/closed/migrations/reroutes/rejects).
// Flight recording: migrations land in the ring as kMigrate events and
// post-migration submits as kReroute, beside the per-shard kSubmit /
// kDispatch stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace parsched::obs {
class FlightRecorder;
}  // namespace parsched::obs

namespace parsched::serve {

/// Virtual ring points per shard; enough that 4–16 shards spread keys
/// within a few percent of uniform.
inline constexpr int kVirtualNodes = 16;

/// Pure consistent-hash placement over `ring` (pairs of hash point and
/// shard index, sorted by point). Exposed for clients that predict
/// placement; Cluster maintains its own ring via the same function.
[[nodiscard]] int ring_lookup(
    const std::vector<std::pair<std::uint64_t, int>>& ring,
    std::uint64_t key);

/// Build the ring for shards [0, shards) minus the ids in `removed`
/// (kVirtualNodes points each, splitmix-hashed). Deterministic.
[[nodiscard]] std::vector<std::pair<std::uint64_t, int>> build_ring(
    int shards, const std::vector<int>& removed = {});

/// Placement a client can compute without talking to the cluster: the
/// ring over all `shards` with none removed.
[[nodiscard]] int consistent_shard(std::uint64_t key, int shards);

class Cluster {
 public:
  struct Config {
    int shards = 1;             ///< shard worker count; clamped to >= 1
    int threads_per_shard = 1;  ///< each shard's pool size; <= 0 means
                                ///< hardware_threads()
    std::size_t max_sessions = 64;  ///< cluster-wide session cap
    std::size_t max_queue = 128;    ///< per-session op queue bound
    /// Borrowed registry for cluster-level counters and the merged
    /// exposition; must outlive the cluster. Per-shard registries are
    /// owned by the cluster itself.
    obs::MetricsRegistry* metrics = nullptr;
    /// Borrowed flight recorder shared by every shard server (one ring,
    /// one black box). Must outlive the cluster.
    obs::FlightRecorder* recorder = nullptr;
  };

  explicit Cluster(Config cfg);
  ~Cluster();  // drain()

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Open a session, placed by consistent hash of `key` (0 means "no
  /// key": the fresh session id is used, spreading keyless sessions
  /// uniformly). On kAccepted `id_out` holds the cluster-wide session
  /// id and `shard_out` (when non-null) the shard it landed on. Throws
  /// std::invalid_argument for an unknown policy spec.
  Submit open(const Session::Config& scfg, SessionId& id_out,
              std::uint64_t key = 0, int* shard_out = nullptr);

  /// Adopt an externally built session (snapshot restore path); same
  /// placement rules as open().
  Submit adopt(std::unique_ptr<Session> session, SessionId& id_out,
               std::uint64_t key = 0, int* shard_out = nullptr);

  /// Queue `op` on the session's strand, wherever the session currently
  /// lives. A session mid-migration answers kDraining (retry; it will
  /// land on the new shard).
  Submit submit(SessionId id, std::function<void(Session&)> op);

  /// Close a session: already-queued operations still run, the routing
  /// entry is gone immediately (subsequent submits answer
  /// kUnknownSession).
  Submit close(SessionId id);

  /// Live-migrate one session to `target_shard`. Returns the verdict
  /// for *starting* the migration (kAccepted means the drain op is on
  /// the source strand); completion is asynchronous. Migrating a
  /// session onto its current shard is an accepted no-op. Throws
  /// std::invalid_argument when `target_shard` is out of range or out
  /// of the ring. A finished session cannot be snapshotted and aborts
  /// its migration (the session stays where it was, still servable).
  Submit migrate(SessionId id, int target_shard);

  /// Take `shard` out of the ring, migrate every live session it holds
  /// to the key's new ring position, wait for the moves to settle, and
  /// — when the shard emptied — drain its Server. Returns the number of
  /// sessions migrated. Sessions that cannot move (already finished)
  /// stay servable on the out-of-ring shard, which is then left
  /// undrained. Throws std::invalid_argument on the last in-ring shard
  /// or an out-of-range id; evacuating an already-evacuated shard is a
  /// zero-migration no-op.
  int evacuate(int shard);

  /// Reject new work and wait until every queued operation on every
  /// shard has run. Idempotent; the cluster is unusable afterwards.
  void drain();

  [[nodiscard]] int shards() const;
  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::size_t session_count(int shard) const;
  /// Current shard of a live session; -1 when unknown.
  [[nodiscard]] int shard_of(SessionId id) const;
  /// Ring placement for `key` under the current membership.
  [[nodiscard]] int shard_for_key(std::uint64_t key) const;
  [[nodiscard]] bool shard_in_ring(int shard) const;
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Cluster-level counters + per-shard snapshots renamed to
  /// "serve.shard<i>.*" + aggregated per-shard totals under the plain
  /// names. This is what the protocol's stats verb exposes.
  [[nodiscard]] obs::MetricsSnapshot merged_snapshot() const;

  /// The shard's Server (tests and the evacuation path).
  [[nodiscard]] Server& shard_server(int shard);

 private:
  struct Shard {
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<Server> server;
    bool in_ring = true;
    bool drained = false;
  };

  /// Routing-table entry: cluster session id -> (shard, inner Server
  /// id). `migrating` parks submits (kDraining) while the snapshot/
  /// restore hop is in flight; `placement` remembers the original shard
  /// so post-migration traffic can be recorded as reroutes.
  struct Route {
    int shard = 0;
    int placement = 0;
    SessionId inner = 0;
    std::uint64_t key = 0;
    bool migrating = false;
  };

  Submit place(std::unique_ptr<Session> session, SessionId& id_out,
               std::uint64_t key, int* shard_out);
  void finish_migration(SessionId id, int source, int target,
                        const std::string& blob);
  void abort_migration(SessionId id);
  void rebuild_ring_locked();
  void migration_done();

  Config cfg_;
  std::vector<Shard> shards_;

  obs::Counter* opened_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Counter* migrations_ = nullptr;
  obs::Counter* migration_failures_ = nullptr;
  obs::Counter* reroutes_ = nullptr;
  obs::Counter* reject_session_cap_ = nullptr;
  obs::Counter* reject_migrating_ = nullptr;
  obs::Counter* reject_unknown_ = nullptr;
  obs::Counter* reject_draining_ = nullptr;

  mutable std::mutex mu_;  // routes_, ring_, next_id_, draining_, counts
  std::unordered_map<SessionId, Route> routes_;
  std::vector<std::pair<std::uint64_t, int>> ring_;
  SessionId next_id_ = 1;
  bool draining_ = false;
  int migrations_in_flight_ = 0;
  std::condition_variable migration_cv_;
};

}  // namespace parsched::serve
