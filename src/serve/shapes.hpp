// parsched — heavy-traffic load shapes for the loadgen client.
//
// PR-4's loadgen drove a uniform fleet: every session equally popular,
// arrivals evenly spaced. Real serving traffic is none of those things,
// and the cluster plane (serve/cluster.hpp) is sized by its worst
// cases. This module supplies the three adversarial shapes the bench
// and soak legs exercise:
//
//   zipf     session popularity follows a Zipf(theta) law — session 0
//            absorbs a constant fraction of all jobs, the tail starves.
//            Stresses per-strand FIFO depth and shard imbalance.
//   burst    every session keys itself onto ONE shard (the ring
//            position of the first session) and releases arrive in
//            tight volleys. The adversarial worst case for
//            consistent-hash routing: N-1 shards idle, one melts.
//   diurnal  arrival rate ramps linearly to a peak mid-run and back —
//            a compressed day. Stresses queue growth and drain on the
//            downslope.
//
// Everything here is bit-deterministic across platforms: the only
// floating-point operations used are +,-,*,/ and sqrt, all of which
// IEEE-754 requires to be correctly rounded (libm's pow/exp make no
// such promise, so Zipf exponents are restricted to multiples of 0.5
// and evaluated via integer powers and sqrt). The golden vectors in
// tests/test_cluster.cpp pin this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace parsched::serve {

enum class LoadShape {
  kUniform,
  kZipf,
  kBurst,
  kDiurnal,
};

/// Parse "uniform" / "zipf" / "burst" / "diurnal"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] LoadShape parse_load_shape(std::string_view name);
[[nodiscard]] const char* load_shape_name(LoadShape shape);

/// base^theta for theta a non-negative multiple of 0.5, evaluated with
/// integer powers and sqrt only (bit-deterministic, unlike libm pow).
/// Throws std::invalid_argument for other exponents or base < 0.
[[nodiscard]] double half_step_pow(double base, double theta);

/// Zipf(theta) popularity over n sessions: weight(i) ∝ 1/(i+1)^theta.
/// theta must be a non-negative multiple of 0.5 (see half_step_pow);
/// theta == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  /// Inverse-CDF draw: map u ∈ [0,1) to a session index. Monotone in u.
  [[nodiscard]] std::size_t sample(double u) const;

  /// Normalized weight of session i (sums to 1 over all sessions).
  [[nodiscard]] double weight(std::size_t i) const;

  [[nodiscard]] std::size_t size() const { return cum_.size(); }

 private:
  std::vector<double> cum_;  // cumulative normalized weights
};

/// Deterministic Zipf job split: exactly `total_jobs` jobs over
/// `sessions` sessions by largest-remainder apportionment of the
/// Zipf(theta) weights (ties broken toward lower indices). Every
/// session receives at least one job when total_jobs >= sessions.
[[nodiscard]] std::vector<int> zipf_admission_counts(std::size_t sessions,
                                                     int total_jobs,
                                                     double theta);

/// Smallest key >= start whose consistent-hash position lands on
/// `shard` in a full ring of `shards` shards (serve/cluster.hpp). The
/// burst shape opens every session with such a key so the whole fleet
/// collapses onto one shard. Throws std::runtime_error if no key is
/// found within 2^20 probes (cannot happen for a ring that owns any
/// arc, which every in-ring shard does).
[[nodiscard]] std::uint64_t key_for_shard(int shard, int shards,
                                          std::uint64_t start = 1);

/// Release time of job j under the burst shape: volleys of
/// `per_burst` jobs at instants k * gap (k = 0, 1, ...).
[[nodiscard]] double burst_release(int j, int per_burst, double gap);

/// Release time under the diurnal shape: the j-th of `jobs` arrivals
/// when the rate ramps linearly from 1 to `peak_ratio` over the first
/// half of `duration` and back down over the second half. u = (j+0.5)/
/// jobs is inverted through the piecewise-quadratic cumulative-arrival
/// curve (sqrt only). peak_ratio >= 1; peak_ratio == 1 is uniform.
[[nodiscard]] double diurnal_release(int j, int jobs, double duration,
                                     double peak_ratio);

}  // namespace parsched::serve
