#include "serve/transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <iostream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "serve/binproto.hpp"

namespace parsched::serve {

namespace {

void sleep_seconds(double seconds) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

/// One accepted connection. Pool threads write responses through
/// write_line()/write_frame() while the poll loop reads requests, so
/// writes serialize behind `mu` and survive the connection being closed
/// (they become no-ops). The protocol mode is decided by the first byte
/// the client sends and never changes afterwards.
struct Connection {
  enum class Mode { kUndecided, kLine, kBinary };

  explicit Connection(int sock) : fd(sock) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return;
    std::string framed = line;
    framed.push_back('\n');
    if (!send_all(fd, framed.data(), framed.size())) closed = true;
  }

  void write_frame(const std::string& payload) {
    const std::string framed = frame(payload);
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return;
    if (!send_all(fd, framed.data(), framed.size())) closed = true;
  }

  /// Unframed bytes — the PBIN hello only.
  void write_raw(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return;
    if (!send_all(fd, bytes.data(), bytes.size())) closed = true;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu);
    if (!closed) {
      closed = true;
      ::close(fd);
    }
  }

  std::mutex mu;
  int fd;
  bool closed = false;
  Mode mode = Mode::kUndecided;
  bool hello_done = false;  // PBIN handshake answered (poll-loop only)
  std::string inbox;        // unconsumed request bytes (poll-loop only)
  FrameBuffer frames;       // PBIN reassembly (poll-loop only)
};

/// Drain `conn->inbox` as NDJSON lines. Returns false once a shutdown
/// request has been served.
bool pump_lines(ProtocolHandler& handler,
                const std::shared_ptr<Connection>& conn) {
  std::size_t start = 0;
  bool running = true;
  for (;;) {
    const std::size_t nl = conn->inbox.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = conn->inbox.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    const std::shared_ptr<Connection> sink = conn;
    if (!handler.handle_line(line, [sink](const std::string& resp) {
          sink->write_line(resp);
        })) {
      running = false;
      break;
    }
  }
  conn->inbox.erase(0, start);
  return running;
}

/// Drain `conn->inbox` as PBIN: hello handshake first, then frames.
/// Returns false once a shutdown request has been served; a corrupt
/// hello or an oversized frame marks the connection dead instead (the
/// byte stream cannot be resynchronized).
bool pump_frames(ProtocolHandler& handler,
                 const std::shared_ptr<Connection>& conn, bool& kill) {
  if (!conn->hello_done) {
    if (conn->inbox.size() < kBinHelloSize) return true;
    std::uint32_t proposed = 0;
    try {
      proposed = decode_hello(
          std::string_view(conn->inbox).substr(0, kBinHelloSize));
    } catch (const std::invalid_argument&) {
      kill = true;
      return true;
    }
    conn->inbox.erase(0, kBinHelloSize);
    const std::uint32_t negotiated =
        proposed == 0 ? 0 : std::min(proposed, kBinProtoVersion);
    conn->write_raw(encode_hello(negotiated));
    if (negotiated == 0) {
      kill = true;
      return true;
    }
    conn->hello_done = true;
  }
  conn->frames.feed(conn->inbox);
  conn->inbox.clear();
  std::string payload;
  try {
    while (conn->frames.next(payload)) {
      const std::shared_ptr<Connection> sink = conn;
      if (!handler.handle_frame(payload, [sink](const std::string& resp) {
            sink->write_frame(resp);
          })) {
        return false;
      }
    }
  } catch (const std::invalid_argument&) {
    kill = true;  // oversized frame length: corruption
  }
  return true;
}

}  // namespace

bool send_all(int fd, const char* data, std::size_t len) {
  // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not SIGPIPE.
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool accept_should_retry(int error) {
  switch (error) {
    case EINTR:         // signal during accept — just try again
    case ECONNABORTED:  // client gave up while queued — not our problem
#if defined(EPROTO)
    case EPROTO:  // protocol hiccup on the nascent socket
#endif
    case EAGAIN:  // raced another accept / spurious wakeup
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EMFILE:   // fd exhaustion: shed this client, keep listening
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
      return true;
    default:
      return false;  // EBADF/EINVAL/...: the listener itself is broken
  }
}

void serve_stdio(ProtocolHandler& handler) {
  auto out_mu = std::make_shared<std::mutex>();
  const ProtocolHandler::WriteFn write = [out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*out_mu);
    std::cout << line << '\n' << std::flush;
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!handler.handle_line(line, write)) return;
  }
  // EOF: flush every queued response before returning.
  handler.drain();
}

void serve_unix_socket(ProtocolHandler& handler, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listener);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error("cannot listen on " + path + ": " + why);
  }

  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  bool running = true;
  while (running) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener, POLLIN, 0});
    for (const auto& [fd, conn] : conns) {
      fds.push_back(pollfd{fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) {
        conns.emplace(fd, std::make_shared<Connection>(fd));
      } else if (!accept_should_retry(errno)) {
        break;  // the listener is broken; drain and tear down below
      }
      // Transient accept failure: the aborted client is gone, the
      // listener keeps serving everyone else.
    }
    std::vector<int> dead;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = conns.find(fds[i].fd);
      if (it == conns.end()) continue;
      const std::shared_ptr<Connection>& conn = it->second;
      char buf[4096];
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead.push_back(fds[i].fd);
        continue;
      }
      conn->inbox.append(buf, static_cast<std::size_t>(n));
      if (conn->mode == Connection::Mode::kUndecided) {
        conn->mode = conn->inbox.front() == kBinMagic[0]
                         ? Connection::Mode::kBinary
                         : Connection::Mode::kLine;
      }
      bool kill = false;
      if (conn->mode == Connection::Mode::kLine) {
        running = pump_lines(handler, conn);
      } else {
        running = pump_frames(handler, conn, kill);
      }
      if (kill) dead.push_back(fds[i].fd);
      if (!running) break;
    }
    for (const int fd : dead) {
      const auto it = conns.find(fd);
      if (it != conns.end()) {
        it->second->close();
        conns.erase(it);
      }
    }
  }

  // Shutdown already drained the cluster (every response is out); now
  // the endpoints can go.
  for (auto& [fd, conn] : conns) conn->close();
  ::close(listener);
  ::unlink(path.c_str());
}

int connect_unix_client(const std::string& path, double timeout_seconds) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const double deadline = obs::monotonic_seconds() + timeout_seconds;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw std::runtime_error("socket() failed: " +
                               std::string(std::strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (obs::monotonic_seconds() >= deadline) {
      throw std::runtime_error("cannot connect to " + path + " within " +
                               std::to_string(timeout_seconds) + "s");
    }
    sleep_seconds(0.02);  // the server may still be binding
  }
}

Client::Client(const std::string& path, double timeout_seconds)
    : fd_(connect_unix_client(path, timeout_seconds)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  if (!send_all(fd_, framed.data(), framed.size())) {
    throw std::runtime_error("server connection lost (send)");
  }
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error("server connection lost (recv)");
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  send_line(line);
  return read_line();
}

}  // namespace parsched::serve
