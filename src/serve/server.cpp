#include "serve/server.hpp"

#include <utility>

#include "check/contract.hpp"
#include "obs/flight_recorder.hpp"

namespace parsched::serve {

const std::vector<double>& latency_bounds_ms() {
  static const std::vector<double> bounds{0.05, 0.1, 0.2, 0.5, 1.0,  2.0,
                                          5.0,  10.0, 20.0, 50.0, 100.0,
                                          200.0, 500.0, 1000.0};
  return bounds;
}

const char* to_string(Submit s) {
  switch (s) {
    case Submit::kAccepted: return "accepted";
    case Submit::kQueueFull: return "queue_full";
    case Submit::kUnknownSession: return "unknown_session";
    case Submit::kDraining: return "draining";
    case Submit::kSessionCap: return "session_cap";
  }
  return "unknown";
}

Server::Server(Config cfg)
    : cfg_(cfg),
      pool_(exec::ThreadPool::Config{cfg.threads, cfg.metrics}) {
  if (cfg_.metrics != nullptr) {
    requests_ = &cfg_.metrics->counter("serve.requests");
    op_errors_ = &cfg_.metrics->counter("serve.op_errors");
    request_timer_ = &cfg_.metrics->timer("serve.request");
    latency_ms_ = &cfg_.metrics->histogram("serve.request.latency_ms",
                                           latency_bounds_ms());
  }
}

Server::~Server() { drain(); }

void Server::queue_depth_delta(std::int64_t delta) {
  if (cfg_.metrics == nullptr) return;
  std::lock_guard<std::mutex> lock(depth_mu_);
  queued_ops_ += delta;
  cfg_.metrics->gauge("serve.queue.depth")
      .set(static_cast<double>(queued_ops_));
}

Submit Server::open(const Session::Config& scfg, SessionId& id_out) {
  Session::Config with_metrics = scfg;
  if (with_metrics.metrics == nullptr) {
    with_metrics.metrics = cfg_.metrics;
  }
  if (with_metrics.recorder == nullptr) {
    with_metrics.recorder = cfg_.recorder;
  }
  // Construct outside the lock: make_scheduler may throw (caller error)
  // and session construction is not cheap enough to serialize.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.draining").inc();
      }
      return Submit::kDraining;
    }
    if (sessions_.size() >= cfg_.max_sessions) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.session_cap").inc();
      }
      return Submit::kSessionCap;
    }
  }
  return install(std::make_unique<Session>(std::move(with_metrics)), id_out);
}

Submit Server::adopt(std::unique_ptr<Session> session, SessionId& id_out) {
  PARSCHED_CHECK(session != nullptr, "adopting a null session");
  return install(std::move(session), id_out);
}

Submit Server::install(std::unique_ptr<Session> session, SessionId& id_out) {
  auto entry = std::make_shared<Entry>();
  entry->session = std::move(session);
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("serve.reject.draining").inc();
    }
    return Submit::kDraining;
  }
  if (sessions_.size() >= cfg_.max_sessions) {
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("serve.reject.session_cap").inc();
    }
    return Submit::kSessionCap;
  }
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::move(entry));
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("serve.sessions.opened").inc();
    cfg_.metrics->gauge("serve.sessions.active")
        .set(static_cast<double>(sessions_.size()));
  }
  id_out = id;
  return Submit::kAccepted;
}

Submit Server::submit(SessionId id, std::function<void(Session&)> op) {
  const Submit verdict = submit_impl(id, std::move(op));
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->record(obs::FlightEvent::kSubmit, id,
                          obs::monotonic_seconds(),
                          static_cast<double>(verdict));
  }
  return verdict;
}

Submit Server::submit_impl(SessionId id, std::function<void(Session&)> op) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.draining").inc();
      }
      return Submit::kDraining;
    }
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.unknown_session").inc();
      }
      return Submit::kUnknownSession;
    }
    entry = it->second;
  }

  bool start = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->closing) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.draining").inc();
      }
      return Submit::kDraining;
    }
    if (entry->queue.size() >= cfg_.max_queue) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.queue_full").inc();
      }
      return Submit::kQueueFull;
    }
    entry->queue.push_back(std::move(op));
    if (!entry->running) {
      entry->running = true;
      start = true;
    }
  }
  queue_depth_delta(1);
  if (start) {
    // The strand task: drains the session's queue, then retires. The
    // future is intentionally dropped — op exceptions are handled inside
    // run_strand, and drain() synchronizes via pool_.wait_idle().
    pool_.submit([this, id, entry] { run_strand(id, entry); });
  }
  return Submit::kAccepted;
}

void Server::run_strand(SessionId id, const std::shared_ptr<Entry>& entry) {
  for (;;) {
    std::function<void(Session&)> op;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->queue.empty()) {
        entry->running = false;
        if (!entry->closing) return;
        if (entry->removed) return;
        entry->removed = true;
        // fall through to remove_entry below, outside entry->mu
      } else {
        op = std::move(entry->queue.front());
        entry->queue.pop_front();
      }
    }
    if (!op) {
      remove_entry(id, entry);
      return;
    }
    queue_depth_delta(-1);
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record(obs::FlightEvent::kDispatch, id,
                            obs::monotonic_seconds());
    }
    if (cfg_.metrics != nullptr) {
      requests_->inc();
      const double t0 = obs::monotonic_seconds();
      try {
        op(*entry->session);
      } catch (...) {
        op_errors_->inc();
      }
      const double dt = obs::monotonic_seconds() - t0;
      request_timer_->add(dt);
      latency_ms_->observe(dt * 1000.0);
    } else {
      try {
        op(*entry->session);
      } catch (...) {
        // Protocol callers report their own errors; an op that leaks an
        // exception must not kill the strand.
      }
    }
  }
}

void Server::remove_entry(SessionId id,
                          const std::shared_ptr<Entry>& entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(id);
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->counter("serve.sessions.closed").inc();
      cfg_.metrics->gauge("serve.sessions.active")
          .set(static_cast<double>(sessions_.size()));
    }
  }
  // The Session dies here, outside both locks.
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->session.reset();
}

Submit Server::close(SessionId id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("serve.reject.unknown_session").inc();
      }
      return Submit::kUnknownSession;
    }
    entry = it->second;
  }
  bool remove_now = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->closing) return Submit::kAccepted;  // idempotent
    entry->closing = true;
    if (!entry->running && entry->queue.empty() && !entry->removed) {
      entry->removed = true;
      remove_now = true;
    }
    // Otherwise the strand retires the session when its queue empties.
  }
  if (remove_now) remove_entry(id, entry);
  return Submit::kAccepted;
}

void Server::drain() {
  {
    // A second drain (the destructor after an explicit call) is fine:
    // the pool wait below is idempotent.
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // No new submits can enqueue past this point; every accepted op either
  // already holds a pool task or sits in a queue a running strand will
  // drain. wait_idle() therefore covers everything.
  pool_.wait_idle();
  pool_.shutdown(true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.clear();
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->gauge("serve.sessions.active").set(0.0);
    }
  }
  // The pool is quiet: the graceful-shutdown dump is deterministic over
  // whatever the run recorded. Idempotent like the drain itself (a second
  // call rewrites the same file).
  if (cfg_.recorder != nullptr) {
    cfg_.recorder->record(obs::FlightEvent::kNote, 0,
                          obs::monotonic_seconds());
    cfg_.recorder->dump_to_file("drain");
  }
}

std::size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace parsched::serve
