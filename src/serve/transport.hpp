// parsched — transports for the serve protocols.
//
// Two server transports share one ProtocolHandler:
//
//   serve_stdio()        NDJSON lines on stdin, responses on stdout. One
//                        client, trivially debuggable
//                        (`echo '{"op":"ping"}' |
//                        parsched serve --stdio`).
//   serve_unix_socket()  a poll(2) loop on a Unix-domain listener; many
//                        concurrent clients. Each connection speaks
//                        NDJSON *or* PBIN (serve/binproto.hpp), decided
//                        by its first byte: 'P' opens the PBIN hello,
//                        anything else an NDJSON line stream.
//
// Both return once a client's "shutdown" request has been served (or on
// EOF / listener error), after draining the cluster so every queued
// response is flushed. Responses are produced on pool threads; each
// connection serializes its writes behind a mutex, so concurrent
// sessions interleave whole lines/frames, never bytes.
//
// The accept loop is hardened against transient failures: EINTR,
// ECONNABORTED and load-shedding errnos (EMFILE/ENFILE/ENOBUFS) skip
// the failed accept and keep listening (accept_should_retry()); only a
// genuinely broken listener (EBADF, EINVAL) stops the loop.
//
// Client is the matching blocking NDJSON client (used by parsched
// loadgen and the protocol round-trip tests): connect with retry —
// the server may still be binding — then strict request/response. The
// PBIN twin, BinClient, lives in serve/binproto.hpp.
#pragma once

#include <cstddef>
#include <string>

#include "serve/protocol.hpp"

namespace parsched::serve {

/// Serve NDJSON over stdin/stdout until shutdown or EOF.
void serve_stdio(ProtocolHandler& handler);

/// Serve NDJSON + PBIN over a Unix-domain socket at `path` (unlinked
/// and re-created). Throws std::runtime_error when the listener cannot
/// be set up; returns after a shutdown request.
void serve_unix_socket(ProtocolHandler& handler, const std::string& path);

/// True when an ::accept() failure with this errno is transient — the
/// aborted/interrupted connection is skipped and the listener keeps
/// accepting. False means the listener itself is broken.
[[nodiscard]] bool accept_should_retry(int error);

/// Connect to a Unix-domain socket, retrying (the server may still be
/// binding) until `timeout_seconds` elapses; throws std::runtime_error
/// on timeout. Returns the connected fd (caller owns/closes).
[[nodiscard]] int connect_unix_client(const std::string& path,
                                      double timeout_seconds);

/// Write the whole buffer, riding out EINTR and partial writes; false
/// when the peer vanished (EPIPE surfaces as a return, never a signal).
bool send_all(int fd, const char* data, std::size_t len);

/// Blocking NDJSON client over a Unix-domain socket. Not thread-safe:
/// one client per thread (loadgen opens one per session).
class Client {
 public:
  /// Connect, retrying (the server may still be starting) until
  /// `timeout_seconds` elapses; throws std::runtime_error on timeout.
  explicit Client(const std::string& path, double timeout_seconds = 10.0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line, block for the next response line. Strict
  /// request/response: never issue a second request before the first
  /// response arrived (responses carry no framing besides order).
  std::string request(const std::string& line);

 private:
  void send_line(const std::string& line);
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace parsched::serve
