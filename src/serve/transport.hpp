// parsched — NDJSON transports for the serve protocol.
//
// Two server transports share one ProtocolHandler:
//
//   serve_stdio()        lines on stdin, responses on stdout. One client,
//                        trivially debuggable (`echo '{"op":"ping"}' |
//                        parsched serve --stdio`).
//   serve_unix_socket()  a poll(2) loop on a Unix-domain listener; many
//                        concurrent clients, one line buffer each.
//
// Both return once a client's "shutdown" request has been served (or on
// EOF / listener error), after draining the server so every queued
// response is flushed. Responses are produced on pool threads; each
// connection serializes its writes behind a mutex, so concurrent
// sessions interleave whole lines, never bytes.
//
// Client is the matching blocking NDJSON client (used by parsched
// loadgen and the protocol round-trip tests): connect with retry —
// the server may still be binding — then strict request/response.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace parsched::serve {

/// Serve NDJSON over stdin/stdout until shutdown or EOF.
void serve_stdio(ProtocolHandler& handler);

/// Serve NDJSON over a Unix-domain socket at `path` (unlinked and
/// re-created). Throws std::runtime_error when the listener cannot be
/// set up; returns after a shutdown request.
void serve_unix_socket(ProtocolHandler& handler, const std::string& path);

/// Blocking NDJSON client over a Unix-domain socket. Not thread-safe:
/// one client per thread (loadgen opens one per session).
class Client {
 public:
  /// Connect, retrying (the server may still be starting) until
  /// `timeout_seconds` elapses; throws std::runtime_error on timeout.
  explicit Client(const std::string& path, double timeout_seconds = 10.0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line, block for the next response line. Strict
  /// request/response: never issue a second request before the first
  /// response arrived (responses carry no framing besides order).
  std::string request(const std::string& line);

 private:
  void send_line(const std::string& line);
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace parsched::serve
