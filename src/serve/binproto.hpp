// parsched — PBIN, the compact binary serve protocol.
//
// PBIN is the NDJSON protocol's binary twin: the same verbs, the same
// verdicts, the same strand semantics — but length-prefixed frames
// instead of lines, and doubles as raw IEEE-754 bits (the serve/wire
// codec shared with the PSNP snapshots) instead of decimal text. That
// makes it the protocol of choice for bit-identity checks: a total_flow
// crossing PBIN is the exact engine double, not a shortest-round-trip
// rendering.
//
// Connection life cycle on a Unix-socket transport:
//
//   client                              server
//   ------ "PBIN" + u32 version ----->         (8-byte hello)
//   <----- "PBIN" + u32 negotiated ---         (0 = rejected, closes)
//   ------ frame(request) ----------->
//   <----- frame(response) ----------         (any order across
//   ...                                        sessions, FIFO within)
//
// The transport decides NDJSON vs PBIN per connection by the first
// byte: '{' (or whitespace) opens an NDJSON line stream, 'P' opens the
// PBIN hello. Version negotiation: the server answers
// min(client_version, kBinProtoVersion), or 0 when it cannot speak
// anything the client proposed (then closes the connection).
//
// Framing: u32 LE payload length, then the payload. A frame may arrive
// torn at any byte offset; FrameBuffer reassembles. Payload layout
// (WireWriter encoding, all little-endian):
//
//   request:   u8 op, u64 request_id, op-specific fields
//   response:  u8 status (0 ok / 1 error / 2 reject), u64 request_id,
//              u8 op, then:
//                ok      op-specific fields (see docs/API.md §serve/)
//                error   str message
//                reject  u8 Submit verdict code (retryable backpressure)
//
// The op-specific field tables live in docs/API.md; encoders/decoders
// below are the single source of truth in code. Unknown ops and corrupt
// payloads answer status=error; a frame longer than kMaxFramePayload
// kills the connection (it cannot be resynchronized).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/job.hpp"

namespace parsched::serve {

inline constexpr char kBinMagic[4] = {'P', 'B', 'I', 'N'};
inline constexpr std::uint32_t kBinProtoVersion = 1;
inline constexpr std::size_t kBinHelloSize = 8;
/// Upper bound on one frame payload; a length beyond this is corruption
/// (the stream cannot be resynchronized past it).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Request opcodes. Values are wire format — append only.
enum class BinOp : std::uint8_t {
  kPing = 0,
  kOpen = 1,
  kAdmit = 2,
  kAdvance = 3,
  kQuery = 4,
  kSnapshot = 5,
  kRestore = 6,
  kFinish = 7,
  kClose = 8,
  kStats = 9,
  kDump = 10,
  kShutdown = 11,
  kMigrate = 12,
  kEvacuate = 13,
  kCluster = 14,
};

/// Response status byte.
enum class BinStatus : std::uint8_t {
  kOk = 0,
  kError = 1,
  kReject = 2,
};

// ---- framing --------------------------------------------------------------

/// Length-prefix one payload: u32 LE size + bytes.
[[nodiscard]] std::string frame(std::string_view payload);

/// The 8-byte hello ("PBIN" + u32 LE version).
[[nodiscard]] std::string encode_hello(std::uint32_t version);

/// Parse an 8-byte hello; throws std::invalid_argument on bad magic.
[[nodiscard]] std::uint32_t decode_hello(std::string_view hello);

/// Incremental frame reassembly: feed() arbitrary byte chunks, next()
/// yields complete payloads in order. Tolerates a frame header or body
/// split at any byte offset. Throws std::invalid_argument when a frame
/// length exceeds kMaxFramePayload.
class FrameBuffer {
 public:
  void feed(std::string_view data) { buf_.append(data.data(), data.size()); }

  /// Extract the next complete payload into `payload`; false when more
  /// bytes are needed.
  bool next(std::string& payload);

 private:
  std::string buf_;
};

// ---- request encoders (client side) ---------------------------------------

[[nodiscard]] std::string bin_ping(std::uint64_t rid);
[[nodiscard]] std::string bin_open(std::uint64_t rid,
                                   const std::string& policy, int machines,
                                   double speed, std::uint64_t key = 0);
[[nodiscard]] std::string bin_admit(std::uint64_t rid, std::uint64_t session,
                                    const Job& job);
[[nodiscard]] std::string bin_advance(std::uint64_t rid,
                                      std::uint64_t session, double to);
[[nodiscard]] std::string bin_query(std::uint64_t rid,
                                    std::uint64_t session);
[[nodiscard]] std::string bin_snapshot(std::uint64_t rid,
                                       std::uint64_t session,
                                       const std::string& path);
[[nodiscard]] std::string bin_restore(std::uint64_t rid,
                                      const std::string& path);
[[nodiscard]] std::string bin_finish(std::uint64_t rid,
                                     std::uint64_t session);
[[nodiscard]] std::string bin_close(std::uint64_t rid,
                                    std::uint64_t session);
[[nodiscard]] std::string bin_stats(std::uint64_t rid);
[[nodiscard]] std::string bin_dump(std::uint64_t rid,
                                   const std::string& path = "");
[[nodiscard]] std::string bin_shutdown(std::uint64_t rid);
[[nodiscard]] std::string bin_migrate(std::uint64_t rid,
                                      std::uint64_t session, int shard);
[[nodiscard]] std::string bin_evacuate(std::uint64_t rid, int shard);
[[nodiscard]] std::string bin_cluster(std::uint64_t rid);

// ---- response decoder (client side) ---------------------------------------

/// One parsed response payload. Which fields are meaningful depends on
/// (status, op); unset fields keep their zero values.
struct BinResponse {
  BinStatus status = BinStatus::kError;
  std::uint64_t rid = 0;
  BinOp op = BinOp::kPing;
  std::string error;        ///< status == kError
  std::uint8_t verdict = 0; ///< status == kReject: Submit code

  std::uint64_t session = 0;  ///< open/restore
  int shard = -1;             ///< open/restore

  // query/finish result block
  std::string policy;
  double time = 0.0;
  double frontier = 0.0;
  std::uint64_t alive = 0;
  std::uint64_t pending = 0;
  bool finished = false;
  std::uint64_t jobs = 0;
  double total_flow = 0.0;
  double weighted_flow = 0.0;
  double fractional_flow = 0.0;
  double makespan = 0.0;
  std::uint64_t decisions = 0;
  std::uint64_t events = 0;

  struct Record {
    std::uint32_t job = 0;
    double release = 0.0;
    double completion = 0.0;
  };
  std::vector<Record> records;  ///< finish

  std::string text;       ///< stats exposition / dump JSONL
  int migrated = 0;       ///< evacuate
  int shards = 0;         ///< cluster
  std::uint64_t sessions = 0;          ///< cluster (total)
  std::vector<std::uint32_t> shard_sessions;  ///< cluster, per shard
  std::vector<bool> in_ring;                  ///< cluster, per shard
};

/// Parse a response payload; throws std::invalid_argument on corruption.
[[nodiscard]] BinResponse parse_bin_response(std::string_view payload);

// ---- blocking client ------------------------------------------------------

/// Blocking PBIN client over a Unix-domain socket — the binary twin of
/// transport.hpp's Client. Performs the hello handshake at
/// construction; throws std::runtime_error when the server rejects the
/// proposed version. Not thread-safe: one client per thread.
class BinClient {
 public:
  explicit BinClient(const std::string& path, double timeout_seconds = 10.0,
                     std::uint32_t version = kBinProtoVersion);
  ~BinClient();
  BinClient(const BinClient&) = delete;
  BinClient& operator=(const BinClient&) = delete;

  /// Send one request payload, block for the next response payload.
  /// Strict request/response, like the NDJSON client.
  [[nodiscard]] std::string request(const std::string& payload);

  /// Convenience: request + parse.
  [[nodiscard]] BinResponse call(const std::string& payload) {
    return parse_bin_response(request(payload));
  }

  [[nodiscard]] std::uint32_t negotiated() const { return negotiated_; }

 private:
  int fd_ = -1;
  std::uint32_t negotiated_ = 0;
  FrameBuffer frames_;
};

}  // namespace parsched::serve
