#include "serve/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "serve/wire.hpp"
#include "util/fsio.hpp"

namespace parsched::serve {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'N', 'P'};

// The byte-level codec lives in serve/wire.hpp, shared with the PBIN
// binary protocol (serve/binproto) so both formats carry doubles as raw
// IEEE-754 bits.
using Writer = WireWriter;
using Reader = WireReader;

// ---- field codecs ---------------------------------------------------------

void put_curve(Writer& w, const SpeedupCurve& c) {
  w.u8(static_cast<std::uint8_t>(c.kind()));
  w.f64(c.alpha());
  if (c.kind() == SpeedupCurve::Kind::kPiecewiseLinear) {
    const auto& knots = c.knots();
    w.size(knots.size());
    for (const auto& [x, y] : knots) {
      w.f64(x);
      w.f64(y);
    }
  }
}

SpeedupCurve get_curve(Reader& r) {
  const auto kind = static_cast<SpeedupCurve::Kind>(r.u8());
  const double alpha = r.f64();
  switch (kind) {
    case SpeedupCurve::Kind::kFullyParallel:
      return SpeedupCurve::fully_parallel();
    case SpeedupCurve::Kind::kSequential:
      return SpeedupCurve::sequential();
    case SpeedupCurve::Kind::kPowerLaw:
      return SpeedupCurve::power_law(alpha);
    case SpeedupCurve::Kind::kPiecewiseLinear: {
      const std::size_t n = r.size();
      std::vector<std::pair<double, double>> knots;
      knots.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = r.f64();
        const double y = r.f64();
        knots.emplace_back(x, y);
      }
      return SpeedupCurve::piecewise_linear(std::move(knots));
    }
  }
  r.fail("unknown speedup-curve kind");
}

void put_tag(Writer& w, const JobTag& t) {
  w.i64(t.phase);
  w.u8(static_cast<std::uint8_t>(t.cls));
  w.i64(t.index);
}

JobTag get_tag(Reader& r) {
  JobTag t;
  t.phase = static_cast<int>(r.i64());
  const std::uint8_t cls = r.u8();
  if (cls > static_cast<std::uint8_t>(JobTag::Class::kStream)) {
    r.fail("unknown job-tag class");
  }
  t.cls = static_cast<JobTag::Class>(cls);
  t.index = r.i64();
  return t;
}

void put_phases(Writer& w, const std::vector<JobPhase>& phases) {
  w.size(phases.size());
  for (const JobPhase& p : phases) {
    w.f64(p.work);
    put_curve(w, p.curve);
  }
}

std::vector<JobPhase> get_phases(Reader& r) {
  const std::size_t n = r.size();
  std::vector<JobPhase> phases;
  phases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    JobPhase p;
    p.work = r.f64();
    p.curve = get_curve(r);
    phases.push_back(std::move(p));
  }
  return phases;
}

void put_job(Writer& w, const Job& j) {
  w.u32(j.id);
  w.f64(j.release);
  w.f64(j.size);
  w.f64(j.weight);
  put_curve(w, j.curve);
  put_tag(w, j.tag);
  put_phases(w, j.phases);
}

Job get_job(Reader& r) {
  Job j;
  j.id = r.u32();
  j.release = r.f64();
  j.size = r.f64();
  j.weight = r.f64();
  j.curve = get_curve(r);
  j.tag = get_tag(r);
  j.phases = get_phases(r);
  return j;
}

void put_alive(Writer& w, const AliveJob& a) {
  w.u32(a.id);
  w.f64(a.release);
  w.f64(a.size);
  w.f64(a.remaining);
  w.f64(a.weight);
  put_curve(w, a.curve);
  w.i64(a.arrival_seq);
  put_tag(w, a.tag);
  put_phases(w, a.phases);
  w.u64(a.phase);
  w.f64(a.phase_remaining);
}

AliveJob get_alive(Reader& r) {
  AliveJob a;
  a.id = r.u32();
  a.release = r.f64();
  a.size = r.f64();
  a.remaining = r.f64();
  a.weight = r.f64();
  a.curve = get_curve(r);
  a.arrival_seq = r.i64();
  a.tag = get_tag(r);
  a.phases = get_phases(r);
  a.phase = static_cast<std::size_t>(r.u64());
  a.phase_remaining = r.f64();
  return a;
}

void put_result(Writer& w, const SimResult& res) {
  w.size(res.records.size());
  for (const JobRecord& rec : res.records) {
    put_job(w, rec.job);
    w.f64(rec.completion);
  }
  w.f64(res.total_flow);
  w.f64(res.weighted_flow);
  w.f64(res.fractional_flow);
  w.f64(res.makespan);
  w.u64(res.decisions);
  w.u64(res.events);
}

SimResult get_result(Reader& r) {
  SimResult res;
  const std::size_t n = r.size();
  res.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    JobRecord rec;
    rec.job = get_job(r);
    rec.completion = r.f64();
    res.records.push_back(std::move(rec));
  }
  res.total_flow = r.f64();
  res.weighted_flow = r.f64();
  res.fractional_flow = r.f64();
  res.makespan = r.f64();
  res.decisions = r.u64();
  res.events = r.u64();
  return res;
}

}  // namespace

std::string encode_snapshot(const SessionSnapshot& snap) {
  Writer w;
  w.str(std::string_view(kMagic, sizeof(kMagic)));
  // (the magic is length-prefixed too — uniformity beats 4 saved bytes)
  Writer body;
  body.u32(kSnapshotVersion);
  body.str(snap.policy);
  body.str(snap.scheduler_state);

  const EngineState& e = snap.engine;
  body.i64(e.machines);
  body.f64(e.config.speed);
  body.f64(e.config.completion_tol);
  body.f64(e.config.time_tol);
  body.u64(e.config.max_decisions);
  body.u8(e.config.validate_allocations ? 1 : 0);
  // v2: the rate-kernel arm is simulation semantics (exp(α·log x) vs
  // pow differ by ULPs), so a continuation must run the donor's arm —
  // import_state enforces the match.
  body.u8(e.config.fast_rate_kernel ? 1 : 0);
  body.f64(e.now);
  body.f64(e.frontier);
  body.i64(e.arrival_seq);
  body.size(e.alive.size());
  for (const AliveJob& a : e.alive) put_alive(body, a);
  body.size(e.completed.size());
  for (const JobId id : e.completed) body.u32(id);
  body.size(e.pending.size());
  for (const Job& j : e.pending) put_job(body, j);
  body.u8(e.has_cached_alloc ? 1 : 0);
  body.size(e.cached_alloc.shares.size());
  for (const double s : e.cached_alloc.shares) body.f64(s);
  body.f64(e.cached_alloc.reconsider_at);
  put_result(body, e.result);

  std::string out = w.take();
  out += body.take();
  return out;
}

SessionSnapshot decode_snapshot(std::string_view blob) {
  Reader r(blob, "snapshot");
  const std::string magic = r.str();
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    r.fail("bad magic (not a parsched snapshot)");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    std::ostringstream os;
    os << "unsupported snapshot version " << version << " (expected "
       << kSnapshotVersion << ")";
    throw std::invalid_argument(os.str());
  }

  SessionSnapshot snap;
  snap.policy = r.str();
  snap.scheduler_state = r.str();

  EngineState& e = snap.engine;
  e.machines = static_cast<int>(r.i64());
  e.config.speed = r.f64();
  e.config.completion_tol = r.f64();
  e.config.time_tol = r.f64();
  e.config.max_decisions = r.u64();
  e.config.validate_allocations = r.u8() != 0;
  e.config.fast_rate_kernel = r.u8() != 0;
  e.now = r.f64();
  e.frontier = r.f64();
  e.arrival_seq = r.i64();
  const std::size_t n_alive = r.size();
  e.alive.reserve(n_alive);
  for (std::size_t i = 0; i < n_alive; ++i) e.alive.push_back(get_alive(r));
  const std::size_t n_done = r.size();
  e.completed.reserve(n_done);
  for (std::size_t i = 0; i < n_done; ++i) e.completed.push_back(r.u32());
  const std::size_t n_pending = r.size();
  e.pending.reserve(n_pending);
  for (std::size_t i = 0; i < n_pending; ++i) {
    e.pending.push_back(get_job(r));
  }
  e.has_cached_alloc = r.u8() != 0;
  const std::size_t n_shares = r.size();
  e.cached_alloc.shares.reserve(n_shares);
  for (std::size_t i = 0; i < n_shares; ++i) {
    e.cached_alloc.shares.push_back(r.f64());
  }
  e.cached_alloc.reconsider_at = r.f64();
  e.result = get_result(r);

  if (!r.done()) r.fail("trailing bytes after snapshot payload");
  return snap;
}

void write_snapshot_file(const std::string& path,
                         const SessionSnapshot& snap) {
  const std::string blob = encode_snapshot(snap);
  auto out = open_output(path, "session snapshot");
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  finish_output(out, path);
}

SessionSnapshot read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open session snapshot: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("read failed for session snapshot: " + path);
  }
  return decode_snapshot(buf.str());
}

}  // namespace parsched::serve
