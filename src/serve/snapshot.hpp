// parsched — versioned binary session snapshots.
//
// A snapshot freezes a live serve/ session — the policy spec, the
// policy's mutable decision state (Scheduler::save_state) and the full
// EngineState of the streaming run — into a self-contained blob that a
// fresh process can restore and continue *bit-identically*: the restored
// run produces the same doubles, in the same order, as the donor would
// have.
//
// Format (version 1): magic "PSNP", a little-endian u32 version, then a
// fixed field order of u8/u32/u64/i64 little-endian integers,
// length-prefixed strings, and doubles serialized as their raw IEEE-754
// bit pattern (u64 LE) — never through decimal text, which is how the
// bit-identity guarantee survives the round trip. Containers whose order
// is semantic (the engine's alive vector, pending admissions) are stored
// verbatim; the completed set is stored sorted, so re-snapshotting a
// restored session reproduces the donor blob byte for byte.
//
// decode_snapshot() throws std::invalid_argument on bad magic, an
// unknown version, truncation, or trailing bytes. The version is bumped
// (and old versions rejected, not migrated) whenever the engine state
// gains a field — a stale blob must fail loudly, not continue subtly
// wrong.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "simcore/engine.hpp"

namespace parsched::serve {

// v2: appended EngineConfig::fast_rate_kernel (u8) after
// validate_allocations — the kernel arm is decision arithmetic, so a
// continuation must know which arm produced the snapshot.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Everything needed to reconstruct a session in a fresh process.
struct SessionSnapshot {
  std::string policy;           ///< registry spec, e.g. "quantized-equi:0.5"
  std::string scheduler_state;  ///< Scheduler::save_state() blob
  EngineState engine;
};

[[nodiscard]] std::string encode_snapshot(const SessionSnapshot& snap);

/// Inverse of encode_snapshot(); throws std::invalid_argument on a
/// corrupt, truncated, or wrong-version blob.
[[nodiscard]] SessionSnapshot decode_snapshot(std::string_view blob);

/// File convenience wrappers (util/fsio-checked write; read throws
/// std::runtime_error when the file cannot be opened).
void write_snapshot_file(const std::string& path,
                         const SessionSnapshot& snap);
[[nodiscard]] SessionSnapshot read_snapshot_file(const std::string& path);

}  // namespace parsched::serve
