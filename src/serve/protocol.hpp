// parsched — the serve NDJSON protocol.
//
// One request per line, one JSON object per request; every response is a
// single compact JSON line carrying the request's "id" back. Grammar
// (docs/API.md §serve/ has the full field tables):
//
//   {"op":"open","id":1,"policy":"equi","machines":4,"speed":1}
//     -> {"id":1,"ok":true,"session":7,"shard":2}
//   {"op":"open","id":1,...,"key":42}       -> consistent-hash routing
//                                              key (default: session id)
//   {"op":"admit","id":2,"session":7,
//    "job":{"id":0,"release":0,"size":2.5,"curve":"pow:0.5"}}
//   {"op":"advance","id":3,"session":7,"to":10.5}
//   {"op":"query","id":4,"session":7}
//   {"op":"snapshot","id":5,"session":7,"path":"s.psnp"}
//   {"op":"restore","id":6,"path":"s.psnp"} -> fresh session id
//   {"op":"finish","id":7,"session":7}      -> final result + records
//   {"op":"close","id":8,"session":7}
//   {"op":"ping","id":9}
//   {"op":"stats","id":10}                  -> {"id":10,"ok":true,
//                                              "format":"prometheus",
//                                              "exposition":"# TYPE ..."}
//   {"op":"dump","id":11}                   -> inline flight-recorder
//                                              JSONL in "dump"
//   {"op":"dump","id":12,"path":"f.jsonl"}  -> dump written to the file
//   {"op":"shutdown","id":13}               -> drains, then stops serving
//
// Cluster administration (serve/cluster.hpp):
//
//   {"op":"migrate","id":14,"session":7,"shard":1}
//     -> ok once the live migration *started* (it completes on the
//        source strand; submits racing it answer {"reject":"draining"}
//        and retry onto the new shard)
//   {"op":"evacuate","id":15,"shard":0}
//     -> {"id":15,"ok":true,"shard":0,"migrated":5} — synchronous:
//        takes the shard out of the ring, live-migrates its sessions to
//        their new ring positions, drains the emptied shard
//   {"op":"cluster","id":16}
//     -> {"id":16,"ok":true,"shards":4,"sessions":12,
//         "shard_sessions":[3,4,0,5],"in_ring":[true,true,false,true]}
//
// stats and dump answer synchronously (never queued on a strand): the
// telemetry plane must respond even when every session is wedged. stats
// requires Server::Config::metrics, dump requires Config::recorder;
// without them the verb answers ok:false.
//
// Failures answer {"id":..,"ok":false,"error":"..."}; load rejections
// (queue full, draining, session cap) additionally carry
// {"reject":"queue_full"} so clients can distinguish backpressure from
// caller bugs. Curve specs are "par", "seq", or "pow:<alpha>".
//
// Session operations execute asynchronously on the shard servers'
// strands; their responses are emitted from pool threads via the
// WriteFn, which must therefore be thread-safe (the transports wrap a
// mutex around the output). Per session, responses arrive in request
// order; across sessions they interleave.
//
// The handler is backed by a serve::Cluster. A Server::Config
// constructs the single-shard special case (the PR-4 shape every
// existing caller relies on); a Cluster::Config opens the sharded
// plane. Beside NDJSON the same handler speaks PBIN, the binary
// protocol (serve/binproto.hpp): handle_frame() is the frame-payload
// twin of handle_line(), and both surfaces drive the same cluster.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "serve/cluster.hpp"

namespace parsched::serve {

class ProtocolHandler {
 public:
  /// Thread-safe sink for one complete response line (NDJSON, no
  /// trailing '\n') or one response frame payload (PBIN, unframed).
  using WriteFn = std::function<void(const std::string&)>;

  /// Single-shard compatibility: one Server-shaped shard.
  explicit ProtocolHandler(Server::Config cfg)
      : cluster_(Cluster::Config{1, cfg.threads, cfg.max_sessions,
                                 cfg.max_queue, cfg.metrics,
                                 cfg.recorder}) {}

  explicit ProtocolHandler(Cluster::Config cfg) : cluster_(cfg) {}

  /// Process one NDJSON request line. Responses (possibly deferred to a
  /// pool thread) go to `write`, which is retained until the response
  /// is emitted. Returns false once a "shutdown" request has been
  /// served — the transport should stop reading and tear down.
  bool handle_line(std::string_view line, WriteFn write);

  /// Process one PBIN request frame payload (serve/binproto.cpp).
  /// `write` receives the response payload, unframed — the transport
  /// adds the length prefix. Same shutdown contract as handle_line.
  bool handle_frame(std::string_view payload, WriteFn write);

  [[nodiscard]] Cluster& cluster() { return cluster_; }

  /// Flush every queued response and stop accepting work (the
  /// transports call this on EOF).
  void drain() { cluster_.drain(); }

 private:
  Cluster cluster_;
};

}  // namespace parsched::serve
