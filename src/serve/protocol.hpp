// parsched — the serve NDJSON protocol.
//
// One request per line, one JSON object per request; every response is a
// single compact JSON line carrying the request's "id" back. Grammar
// (docs/API.md §serve/ has the full field tables):
//
//   {"op":"open","id":1,"policy":"equi","machines":4,"speed":1}
//     -> {"id":1,"ok":true,"session":7}
//   {"op":"admit","id":2,"session":7,
//    "job":{"id":0,"release":0,"size":2.5,"curve":"pow:0.5"}}
//   {"op":"advance","id":3,"session":7,"to":10.5}
//   {"op":"query","id":4,"session":7}
//   {"op":"snapshot","id":5,"session":7,"path":"s.psnp"}
//   {"op":"restore","id":6,"path":"s.psnp"} -> fresh session id
//   {"op":"finish","id":7,"session":7}      -> final result + records
//   {"op":"close","id":8,"session":7}
//   {"op":"ping","id":9}
//   {"op":"stats","id":10}                  -> {"id":10,"ok":true,
//                                              "format":"prometheus",
//                                              "exposition":"# TYPE ..."}
//   {"op":"dump","id":11}                   -> inline flight-recorder
//                                              JSONL in "dump"
//   {"op":"dump","id":12,"path":"f.jsonl"}  -> dump written to the file
//   {"op":"shutdown","id":13}               -> drains, then stops serving
//
// stats and dump answer synchronously (never queued on a strand): the
// telemetry plane must respond even when every session is wedged. stats
// requires Server::Config::metrics, dump requires Config::recorder;
// without them the verb answers ok:false.
//
// Failures answer {"id":..,"ok":false,"error":"..."}; load rejections
// (queue full, draining, session cap) additionally carry
// {"reject":"queue_full"} so clients can distinguish backpressure from
// caller bugs. Curve specs are "par", "seq", or "pow:<alpha>".
//
// Session operations execute asynchronously on the server's strands;
// their responses are emitted from pool threads via the WriteFn, which
// must therefore be thread-safe (the transports wrap a mutex around the
// output). Per session, responses arrive in request order; across
// sessions they interleave.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "serve/server.hpp"

namespace parsched::serve {

class ProtocolHandler {
 public:
  /// Thread-safe sink for one complete response line (no trailing '\n').
  using WriteFn = std::function<void(const std::string&)>;

  explicit ProtocolHandler(Server::Config cfg) : server_(cfg) {}

  /// Process one request line. Responses (possibly deferred to a pool
  /// thread) go to `write`, which is retained until the response is
  /// emitted. Returns false once a "shutdown" request has been served —
  /// the transport should stop reading and tear down.
  bool handle_line(std::string_view line, WriteFn write);

  [[nodiscard]] Server& server() { return server_; }

 private:
  Server server_;
};

}  // namespace parsched::serve
