#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/expose.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"
#include "speedup/curve.hpp"
#include "util/fsio.hpp"

namespace parsched::serve {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

/// The request id, carried verbatim into the response. Requests without
/// an id still get responses (id omitted).
struct RequestId {
  bool present = false;
  double value = 0.0;
};

std::string error_line(const RequestId& id, const std::string& message,
                       const char* reject = nullptr) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", false);
  w.kv("error", message);
  if (reject != nullptr) w.kv("reject", reject);
  w.end_object();
  return os.str();
}

SpeedupCurve parse_curve(const std::string& spec) {
  if (spec.empty() || spec == "par") return SpeedupCurve::fully_parallel();
  if (spec == "seq") return SpeedupCurve::sequential();
  if (spec.rfind("pow:", 0) == 0) {
    std::size_t used = 0;
    double alpha = 0.0;
    try {
      alpha = std::stod(spec.substr(4), &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != spec.size() - 4 || !(alpha >= 0.0) ||
        !(alpha <= 1.0)) {
      throw std::invalid_argument("bad power-law curve spec: " + spec);
    }
    return SpeedupCurve::power_law(alpha);
  }
  throw std::invalid_argument("unknown curve spec: " + spec +
                              " (expected par|seq|pow:<alpha>)");
}

Job parse_job(const JsonValue& jv) {
  if (!jv.is_object()) throw std::invalid_argument("job must be an object");
  const JsonValue* id = jv.find("id");
  if (id == nullptr || !id->is_number()) {
    throw std::invalid_argument("job.id (number) is required");
  }
  Job job;
  job.id = static_cast<JobId>(id->number);
  job.release = jv.number_or("release", 0.0);
  job.size = jv.number_or("size", 1.0);
  job.weight = jv.number_or("weight", 1.0);
  job.curve = parse_curve(jv.string_or("curve", "par"));
  if (const JsonValue* phases = jv.find("phases"); phases != nullptr) {
    if (!phases->is_array()) {
      throw std::invalid_argument("job.phases must be an array");
    }
    for (const JsonValue& pv : phases->array) {
      if (!pv.is_object()) {
        throw std::invalid_argument("job phase must be an object");
      }
      JobPhase phase;
      phase.work = pv.number_or("work", 0.0);
      phase.curve = parse_curve(pv.string_or("curve", "par"));
      job.phases.push_back(std::move(phase));
    }
  }
  return job;
}

/// Shared shape of the query/finish payloads.
void write_result_fields(JsonWriter& w, const SimResult& r) {
  w.kv("jobs", static_cast<std::uint64_t>(r.records.size()));
  w.kv("total_flow", r.total_flow);
  w.kv("weighted_flow", r.weighted_flow);
  w.kv("fractional_flow", r.fractional_flow);
  w.kv("makespan", r.makespan);
  w.kv("decisions", r.decisions);
  w.kv("events", r.events);
}

std::string query_line(const RequestId& id, const Session& s) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  w.kv("policy", s.policy_name());
  w.kv("time", s.time());
  w.kv("frontier", s.frontier());
  w.kv("alive", static_cast<std::uint64_t>(s.alive_count()));
  w.kv("pending", static_cast<std::uint64_t>(s.pending_count()));
  w.kv("finished", s.finished());
  write_result_fields(w, s.partial());
  w.end_object();
  return os.str();
}

std::string finish_line(const RequestId& id, const SimResult& r) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  write_result_fields(w, r);
  w.key("records");
  w.begin_array();
  for (const JobRecord& rec : r.records) {
    w.begin_object();
    w.kv("job", static_cast<std::uint64_t>(rec.job.id));
    w.kv("release", rec.job.release);
    w.kv("completion", rec.completion);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

std::string ok_line(const RequestId& id) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  w.end_object();
  return os.str();
}

std::string stats_line(const RequestId& id, const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  w.kv("format", "prometheus");
  w.kv("metrics", static_cast<std::uint64_t>(snap.samples.size()));
  w.kv("exposition", obs::exposition_text(snap));
  w.end_object();
  return os.str();
}

std::string dump_line(const RequestId& id, const std::string& jsonl) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  w.kv("kind", "parsched-flight-record");
  w.kv("dump", jsonl);
  w.end_object();
  return os.str();
}

std::string session_line(const RequestId& id, SessionId sid, int shard) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  if (id.present) w.kv("id", id.value);
  w.kv("ok", true);
  w.kv("session", static_cast<std::uint64_t>(sid));
  w.kv("shard", static_cast<std::uint64_t>(shard < 0 ? 0 : shard));
  w.end_object();
  return os.str();
}

const char* reject_reason(Submit s) {
  return s == Submit::kAccepted ? nullptr : to_string(s);
}

}  // namespace

bool ProtocolHandler::handle_line(std::string_view line, WriteFn write) {
  RequestId id;
  JsonValue req;
  std::string parse_error;
  if (!obs::json_parse(line, req, &parse_error)) {
    write(error_line(id, "bad JSON: " + parse_error));
    return true;
  }
  if (!req.is_object()) {
    write(error_line(id, "request must be a JSON object"));
    return true;
  }
  if (const JsonValue* idv = req.find("id");
      idv != nullptr && idv->is_number()) {
    id.present = true;
    id.value = idv->number;
  }
  const std::string op = req.string_or("op", "");
  if (op.empty()) {
    write(error_line(id, "missing op"));
    return true;
  }

  try {
    if (op == "ping") {
      write(ok_line(id));
      return true;
    }
    if (op == "stats") {
      // Live telemetry: a point-in-time merged snapshot (cluster
      // counters + per-shard serve.shard<i>.* + aggregated totals)
      // rendered as Prometheus text exposition, answered synchronously
      // (no strand — stats must work even when every session is
      // wedged).
      if (cluster_.config().metrics == nullptr) {
        write(error_line(id, "stats: server has no metrics registry"));
        return true;
      }
      write(stats_line(id, cluster_.merged_snapshot()));
      return true;
    }
    if (op == "dump") {
      // On-demand flight-recorder dump: inline by default, to a file when
      // "path" is given. Synchronous for the same reason as stats.
      const obs::FlightRecorder* rec = cluster_.config().recorder;
      if (rec == nullptr) {
        write(error_line(id, "dump: server has no flight recorder"));
        return true;
      }
      std::ostringstream dump;
      rec->dump_jsonl(dump, "dump_verb");
      const std::string path = req.string_or("path", "");
      if (!path.empty()) {
        auto out = open_output(path, "flight-recorder dump");
        out << dump.str();
        finish_output(out, path);
        write(ok_line(id));
      } else {
        write(dump_line(id, dump.str()));
      }
      return true;
    }
    if (op == "shutdown") {
      cluster_.drain();  // flushes every queued response first
      write(ok_line(id));
      return false;
    }
    if (op == "cluster") {
      std::ostringstream os;
      JsonWriter w(os);
      w.begin_object();
      if (id.present) w.kv("id", id.value);
      w.kv("ok", true);
      const int n = cluster_.shards();
      w.kv("shards", static_cast<std::uint64_t>(n));
      w.kv("sessions", static_cast<std::uint64_t>(
                           cluster_.session_count()));
      w.key("shard_sessions");
      w.begin_array();
      for (int i = 0; i < n; ++i) {
        w.value(static_cast<std::uint64_t>(cluster_.session_count(i)));
      }
      w.end_array();
      w.key("in_ring");
      w.begin_array();
      for (int i = 0; i < n; ++i) w.value(cluster_.shard_in_ring(i));
      w.end_array();
      w.end_object();
      write(os.str());
      return true;
    }
    if (op == "evacuate") {
      const JsonValue* shv = req.find("shard");
      if (shv == nullptr || !shv->is_number()) {
        write(error_line(id, "evacuate requires shard (number)"));
        return true;
      }
      const int shard = static_cast<int>(shv->number);
      const int migrated = cluster_.evacuate(shard);
      std::ostringstream os;
      JsonWriter w(os);
      w.begin_object();
      if (id.present) w.kv("id", id.value);
      w.kv("ok", true);
      w.kv("shard", static_cast<std::uint64_t>(shard));
      w.kv("migrated", static_cast<std::uint64_t>(migrated));
      w.end_object();
      write(os.str());
      return true;
    }
    if (op == "open") {
      Session::Config scfg;
      scfg.policy = req.string_or("policy", "equi");
      scfg.machines = static_cast<int>(req.number_or("machines", 1.0));
      scfg.speed = req.number_or("speed", 1.0);
      const auto key =
          static_cast<std::uint64_t>(req.number_or("key", 0.0));
      SessionId sid = 0;
      int shard = -1;
      const Submit verdict = cluster_.open(scfg, sid, key, &shard);
      if (verdict != Submit::kAccepted) {
        write(error_line(id, "open rejected", reject_reason(verdict)));
        return true;
      }
      write(session_line(id, sid, shard));
      return true;
    }
    if (op == "restore") {
      const std::string path = req.string_or("path", "");
      if (path.empty()) {
        write(error_line(id, "restore requires path"));
        return true;
      }
      auto session = Session::restore(read_snapshot_file(path), nullptr);
      SessionId sid = 0;
      int shard = -1;
      const Submit verdict =
          cluster_.adopt(std::move(session), sid, 0, &shard);
      if (verdict != Submit::kAccepted) {
        write(error_line(id, "restore rejected", reject_reason(verdict)));
        return true;
      }
      write(session_line(id, sid, shard));
      return true;
    }

    // Everything below addresses an existing session.
    const JsonValue* sidv = req.find("session");
    if (sidv == nullptr || !sidv->is_number()) {
      write(error_line(id, "missing session"));
      return true;
    }
    const auto sid = static_cast<SessionId>(sidv->number);

    if (op == "close") {
      const Submit verdict = cluster_.close(sid);
      if (verdict != Submit::kAccepted) {
        write(error_line(id, "close rejected", reject_reason(verdict)));
        return true;
      }
      write(ok_line(id));
      return true;
    }
    if (op == "migrate") {
      const JsonValue* shv = req.find("shard");
      if (shv == nullptr || !shv->is_number()) {
        write(error_line(id, "migrate requires shard (number)"));
        return true;
      }
      const Submit verdict =
          cluster_.migrate(sid, static_cast<int>(shv->number));
      if (verdict != Submit::kAccepted) {
        write(error_line(id, "migrate rejected", reject_reason(verdict)));
        return true;
      }
      write(ok_line(id));
      return true;
    }

    std::function<void(Session&)> task;
    if (op == "admit") {
      const JsonValue* jobv = req.find("job");
      if (jobv == nullptr) {
        write(error_line(id, "admit requires job"));
        return true;
      }
      Job job = parse_job(*jobv);
      task = [id, write, job = std::move(job)](Session& s) {
        s.admit(job);
        write(ok_line(id));
      };
    } else if (op == "advance") {
      const JsonValue* tov = req.find("to");
      if (tov == nullptr || !tov->is_number()) {
        write(error_line(id, "advance requires to (number)"));
        return true;
      }
      const double to = tov->number;
      task = [id, write, to](Session& s) {
        s.advance(to);
        write(ok_line(id));
      };
    } else if (op == "query") {
      task = [id, write](Session& s) { write(query_line(id, s)); };
    } else if (op == "snapshot") {
      const std::string path = req.string_or("path", "");
      if (path.empty()) {
        write(error_line(id, "snapshot requires path"));
        return true;
      }
      task = [id, write, path](Session& s) {
        const std::string blob = s.snapshot();
        auto out = open_output(path, "session snapshot");
        out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
        finish_output(out, path);
        write(ok_line(id));
      };
    } else if (op == "finish") {
      task = [id, write](Session& s) {
        s.finish();
        write(finish_line(id, s.result()));
      };
    } else {
      write(error_line(id, "unknown op: " + op));
      return true;
    }

    // Wrap so an op failure answers the request instead of killing the
    // strand silently.
    const Submit verdict = cluster_.submit(
        sid, [id, write, task = std::move(task)](Session& s) {
          try {
            task(s);
          } catch (const std::exception& e) {
            write(error_line(id, e.what()));
          }
        });
    if (verdict != Submit::kAccepted) {
      write(error_line(id, std::string(op) + " rejected",
                       reject_reason(verdict)));
    }
  } catch (const std::exception& e) {
    write(error_line(id, e.what()));
  }
  return true;
}

}  // namespace parsched::serve
