// parsched — the shared little-endian wire codec.
//
// WireWriter/WireReader are the byte-level encoding both binary formats
// of the serve layer speak: the PSNP session snapshots (serve/snapshot)
// and the PBIN request/response frames (serve/binproto). Factoring the
// codec out keeps the two formats bit-compatible by construction — a
// double crosses either surface as its raw IEEE-754 bit pattern (u64
// little-endian), never through decimal text, which is what the
// bit-identity guarantees of snapshot restore and the binary protocol
// rest on.
//
// Encoding rules:
//   * u8/u32/u64/i64  little-endian, fixed width;
//   * f64             raw IEEE-754 bits as u64 LE (round-trips ±inf,
//                     NaN payloads and signed zero exactly);
//   * str             u32 length prefix + raw bytes;
//   * size            u32 element count, read-checked against the bytes
//                     remaining so a corrupt count cannot drive a
//                     multi-gigabyte allocation.
//
// WireReader throws std::invalid_argument on truncation or a failed
// check, tagging the message with the byte offset and the `what` label
// given at construction ("snapshot", "frame", ...).
#pragma once

#include <cstdint>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace parsched::serve {

class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    // Raw IEEE-754 bits: the only encoding that round-trips every value
    // (including ±inf and signed zero) exactly.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  void size(std::size_t n) { u32(static_cast<std::uint32_t>(n)); }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data, std::string what = "blob")
      : data_(data), what_(std::move(what)) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                          i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t size() {
    const std::uint32_t n = u32();
    // A count cannot exceed the remaining bytes (every element is at
    // least one byte); reject early so a corrupt count cannot drive a
    // multi-gigabyte allocation.
    if (n > data_.size() - pos_) fail("element count exceeds payload size");
    return n;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    std::ostringstream os;
    os << "corrupt " << what_ << " at byte " << pos_ << ": " << why;
    throw std::invalid_argument(os.str());
  }

 private:
  void need(std::size_t n) {
    if (data_.size() - pos_ < n) fail("truncated");
  }

  std::string_view data_;
  std::string what_;
  std::size_t pos_ = 0;
};

}  // namespace parsched::serve
