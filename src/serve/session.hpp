// parsched — one online scheduling session.
//
// A Session wraps a live simcore::Engine in streaming mode together with
// the policy it runs: jobs are admitted incrementally (admit), simulated
// time is advanced in increments (advance), intermediate results can be
// queried at any point (query), and the arrival stream is closed with
// finish(), which returns the final SimResult — identical, double for
// double, to a batch Engine::run() over the same jobs.
//
// The clock driving advance() belongs to the caller: a replay client
// advances along the releases of a recorded arrival log, a wall-clock
// client maps real time onto simulated time. The session itself is
// clock-agnostic (and reads no clock — determinism is the point).
//
// snapshot() serializes the whole session (policy spec + policy state +
// engine state) into a versioned blob; restore() reconstructs it in any
// process, and the continuation is bit-identical to the donor's
// (tests/test_serve.cpp holds both properties).
//
// Sessions are NOT thread-safe; the serve::Server runs each session on a
// strand (at most one queued operation executing at a time), which is
// the concurrency contract.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "simcore/engine.hpp"

namespace parsched::obs {
class MetricsRegistry;
class FlightRecorder;
}  // namespace parsched::obs

namespace parsched::serve {

struct SessionSnapshot;  // serve/snapshot.hpp

class Session {
 public:
  struct Config {
    std::string policy = "equi";  ///< sched/registry.hpp spec
    int machines = 1;
    double speed = 1.0;  ///< resource augmentation (EngineConfig::speed)
    /// Borrowed registry for engine run totals; must outlive the session.
    obs::MetricsRegistry* metrics = nullptr;
    /// Borrowed flight recorder handed to the engine (admissions,
    /// decision steps, completions, stalls land in the ring). Must
    /// outlive the session. Not carried across snapshot restore — the
    /// recorder is observability plumbing, not session state.
    obs::FlightRecorder* recorder = nullptr;
  };

  /// Opens the session: constructs the policy (throws
  /// std::invalid_argument on an unknown spec) and begins a streaming
  /// run.
  explicit Session(Config cfg);

  /// Admit one job. Requires job.release >= frontier(); throws
  /// std::invalid_argument otherwise. Rejected admissions leave the
  /// session unchanged.
  void admit(const Job& job);

  /// Simulate up to time t (monotone; earlier times are a no-op).
  void advance(double to_time);

  /// Close the arrival stream, run to completion, and latch the final
  /// result (available via result() afterwards). Idempotent.
  void finish();

  [[nodiscard]] bool finished() const { return final_.has_value(); }
  /// Final result; only valid after finish().
  [[nodiscard]] const SimResult& result() const;
  /// Results accumulated so far (final result once finished).
  [[nodiscard]] const SimResult& partial() const;

  [[nodiscard]] double time() const { return engine_->time(); }
  [[nodiscard]] double frontier() const;
  [[nodiscard]] std::size_t alive_count() const {
    return engine_->alive_count();
  }
  [[nodiscard]] std::size_t pending_count() const {
    return engine_->pending_count();
  }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const std::string& policy_name() const {
    return policy_name_;
  }

  /// Serialize the full session state (versioned binary blob). Only
  /// valid before finish().
  [[nodiscard]] std::string snapshot() const;

  /// Reconstruct a session from a snapshot() blob; `metrics` is attached
  /// to the restored engine (the blob carries no registry). Throws
  /// std::invalid_argument on a corrupt or wrong-version blob.
  static std::unique_ptr<Session> restore(
      const std::string& blob, obs::MetricsRegistry* metrics = nullptr);

  /// Same, from an already-decoded snapshot (the file restore path).
  static std::unique_ptr<Session> restore(
      SessionSnapshot snap, obs::MetricsRegistry* metrics = nullptr);

 private:
  struct RestoreTag {};
  Session(RestoreTag, SessionSnapshot snap, obs::MetricsRegistry* metrics);

  Config cfg_;
  std::string policy_name_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<Engine> engine_;
  std::optional<SimResult> final_;
};

}  // namespace parsched::serve
