#include "serve/cluster.hpp"

#include <algorithm>
#include <ctime>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "check/contract.hpp"
#include "obs/flight_recorder.hpp"

namespace parsched::serve {

namespace {

/// splitmix64 finalizer — the same mixing family exec::task_seed and the
/// loadgen streams use. Pure, so clients can reproduce ring placement.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void sleep_ms(long ms) {
  timespec ts{};
  ts.tv_nsec = ms * 1'000'000L;
  nanosleep(&ts, nullptr);
}

}  // namespace

int ring_lookup(const std::vector<std::pair<std::uint64_t, int>>& ring,
                std::uint64_t key) {
  PARSCHED_CHECK(!ring.empty(), "consistent-hash ring is empty");
  const std::uint64_t h = mix64(key);
  auto it = std::lower_bound(
      ring.begin(), ring.end(), std::make_pair(h, 0),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring.end()) it = ring.begin();  // wrap around
  return it->second;
}

std::vector<std::pair<std::uint64_t, int>> build_ring(
    int shards, const std::vector<int>& removed) {
  std::vector<std::pair<std::uint64_t, int>> ring;
  ring.reserve(static_cast<std::size_t>(shards) * kVirtualNodes);
  for (int s = 0; s < shards; ++s) {
    if (std::find(removed.begin(), removed.end(), s) != removed.end()) {
      continue;
    }
    // Two mixing rounds decorrelate the virtual points of adjacent
    // shards; a single round would leave them on a lattice.
    const std::uint64_t base = mix64(static_cast<std::uint64_t>(s) + 1);
    for (int v = 0; v < kVirtualNodes; ++v) {
      ring.emplace_back(mix64(base + static_cast<std::uint64_t>(v)), s);
    }
  }
  std::sort(ring.begin(), ring.end());
  return ring;
}

int consistent_shard(std::uint64_t key, int shards) {
  return ring_lookup(build_ring(shards), key);
}

Cluster::Cluster(Config cfg) : cfg_(cfg) {
  if (cfg_.shards < 1) cfg_.shards = 1;
  shards_.resize(static_cast<std::size_t>(cfg_.shards));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (cfg_.metrics != nullptr) {
      shards_[i].metrics = std::make_unique<obs::MetricsRegistry>();
    }
    Server::Config sc;
    sc.threads = cfg_.threads_per_shard;
    // The cluster enforces the session cap globally; the per-shard cap
    // is set to the same bound so an adversarial all-one-shard skew is
    // admitted up to the cluster-wide limit, never double-rejected.
    sc.max_sessions = cfg_.max_sessions;
    sc.max_queue = cfg_.max_queue;
    sc.metrics = shards_[i].metrics.get();
    sc.recorder = cfg_.recorder;
    shards_[i].server = std::make_unique<Server>(sc);
  }
  ring_ = build_ring(cfg_.shards);
  if (cfg_.metrics != nullptr) {
    opened_ = &cfg_.metrics->counter("serve.cluster.sessions.opened");
    closed_ = &cfg_.metrics->counter("serve.cluster.sessions.closed");
    sessions_gauge_ = &cfg_.metrics->gauge("serve.cluster.sessions.active");
    migrations_ = &cfg_.metrics->counter("serve.cluster.migrations");
    migration_failures_ =
        &cfg_.metrics->counter("serve.cluster.migration_failures");
    reroutes_ = &cfg_.metrics->counter("serve.cluster.reroutes");
    reject_session_cap_ =
        &cfg_.metrics->counter("serve.cluster.reject.session_cap");
    reject_migrating_ =
        &cfg_.metrics->counter("serve.cluster.reject.migrating");
    reject_unknown_ =
        &cfg_.metrics->counter("serve.cluster.reject.unknown_session");
    reject_draining_ =
        &cfg_.metrics->counter("serve.cluster.reject.draining");
  }
}

Cluster::~Cluster() { drain(); }

Submit Cluster::open(const Session::Config& scfg, SessionId& id_out,
                     std::uint64_t key, int* shard_out) {
  int shard = 0;
  SessionId cid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      if (reject_draining_ != nullptr) reject_draining_->inc();
      return Submit::kDraining;
    }
    if (routes_.size() >= cfg_.max_sessions) {
      if (reject_session_cap_ != nullptr) reject_session_cap_->inc();
      return Submit::kSessionCap;
    }
    cid = next_id_++;
    Route r;
    r.key = key != 0 ? key : cid;
    shard = ring_lookup(ring_, r.key);
    r.shard = shard;
    r.placement = shard;
    r.migrating = true;  // parked until the shard server installed it
    routes_.emplace(cid, r);
  }

  // Construct outside the lock: make_scheduler may throw (caller error)
  // and session construction is not cheap enough to serialize.
  Session::Config with_metrics = scfg;
  if (with_metrics.metrics == nullptr) {
    with_metrics.metrics = shards_[static_cast<std::size_t>(shard)]
                               .metrics.get();
  }
  if (with_metrics.recorder == nullptr) {
    with_metrics.recorder = cfg_.recorder;
  }
  std::unique_ptr<Session> session;
  try {
    session = std::make_unique<Session>(std::move(with_metrics));
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    routes_.erase(cid);
    throw;
  }

  SessionId inner = 0;
  const Submit verdict =
      shards_[static_cast<std::size_t>(shard)].server->adopt(
          std::move(session), inner);
  std::lock_guard<std::mutex> lock(mu_);
  if (verdict != Submit::kAccepted) {
    routes_.erase(cid);
    return verdict;
  }
  auto it = routes_.find(cid);
  it->second.inner = inner;
  it->second.migrating = false;
  if (opened_ != nullptr) {
    opened_->inc();
    sessions_gauge_->set(static_cast<double>(routes_.size()));
  }
  id_out = cid;
  if (shard_out != nullptr) *shard_out = shard;
  return Submit::kAccepted;
}

Submit Cluster::adopt(std::unique_ptr<Session> session, SessionId& id_out,
                      std::uint64_t key, int* shard_out) {
  PARSCHED_CHECK(session != nullptr, "adopting a null session");
  int shard = 0;
  SessionId cid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      if (reject_draining_ != nullptr) reject_draining_->inc();
      return Submit::kDraining;
    }
    if (routes_.size() >= cfg_.max_sessions) {
      if (reject_session_cap_ != nullptr) reject_session_cap_->inc();
      return Submit::kSessionCap;
    }
    cid = next_id_++;
    Route r;
    r.key = key != 0 ? key : cid;
    shard = ring_lookup(ring_, r.key);
    r.shard = shard;
    r.placement = shard;
    r.migrating = true;
    routes_.emplace(cid, r);
  }
  SessionId inner = 0;
  const Submit verdict =
      shards_[static_cast<std::size_t>(shard)].server->adopt(
          std::move(session), inner);
  std::lock_guard<std::mutex> lock(mu_);
  if (verdict != Submit::kAccepted) {
    routes_.erase(cid);
    return verdict;
  }
  auto it = routes_.find(cid);
  it->second.inner = inner;
  it->second.migrating = false;
  if (opened_ != nullptr) {
    opened_->inc();
    sessions_gauge_->set(static_cast<double>(routes_.size()));
  }
  id_out = cid;
  if (shard_out != nullptr) *shard_out = shard;
  return Submit::kAccepted;
}

Submit Cluster::submit(SessionId id, std::function<void(Session&)> op) {
  // The lock is held across the shard submit so a concurrent migrate()
  // cannot slip its drain op between our route lookup and our enqueue —
  // that interleaving would run `op` on the source strand *after* the
  // snapshot was taken and silently lose its effect on the migrated
  // session.
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    if (reject_draining_ != nullptr) reject_draining_->inc();
    return Submit::kDraining;
  }
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    if (reject_unknown_ != nullptr) reject_unknown_->inc();
    return Submit::kUnknownSession;
  }
  Route& r = it->second;
  if (r.migrating) {
    if (reject_migrating_ != nullptr) reject_migrating_->inc();
    return Submit::kDraining;
  }
  if (r.shard != r.placement) {
    if (reroutes_ != nullptr) reroutes_->inc();
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record(obs::FlightEvent::kReroute, id,
                            obs::monotonic_seconds(),
                            static_cast<double>(r.shard),
                            static_cast<std::uint32_t>(r.placement));
    }
  }
  return shards_[static_cast<std::size_t>(r.shard)].server->submit(
      r.inner, std::move(op));
}

Submit Cluster::close(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    if (reject_unknown_ != nullptr) reject_unknown_->inc();
    return Submit::kUnknownSession;
  }
  Route& r = it->second;
  if (r.migrating) {
    // Closing mid-migration would race the adoption hop; the caller
    // retries once the move settled.
    if (reject_migrating_ != nullptr) reject_migrating_->inc();
    return Submit::kDraining;
  }
  const Submit verdict =
      shards_[static_cast<std::size_t>(r.shard)].server->close(r.inner);
  if (verdict == Submit::kAccepted || verdict == Submit::kUnknownSession) {
    routes_.erase(it);
    if (closed_ != nullptr) {
      closed_->inc();
      sessions_gauge_->set(static_cast<double>(routes_.size()));
    }
  }
  return verdict;
}

Submit Cluster::migrate(SessionId id, int target_shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (target_shard < 0 ||
      target_shard >= static_cast<int>(shards_.size())) {
    throw std::invalid_argument("migrate: shard " +
                                std::to_string(target_shard) +
                                " out of range");
  }
  if (!shards_[static_cast<std::size_t>(target_shard)].in_ring) {
    throw std::invalid_argument("migrate: shard " +
                                std::to_string(target_shard) +
                                " is out of the ring");
  }
  if (draining_) {
    if (reject_draining_ != nullptr) reject_draining_->inc();
    return Submit::kDraining;
  }
  const auto it = routes_.find(id);
  if (it == routes_.end()) {
    if (reject_unknown_ != nullptr) reject_unknown_->inc();
    return Submit::kUnknownSession;
  }
  Route& r = it->second;
  if (r.migrating) {
    if (reject_migrating_ != nullptr) reject_migrating_->inc();
    return Submit::kDraining;
  }
  if (r.shard == target_shard) return Submit::kAccepted;  // no-op

  const int source = r.shard;
  r.migrating = true;
  ++migrations_in_flight_;
  // The drain op rides the session's strand: every previously accepted
  // op completes before the snapshot, no later op can slip in (submits
  // answer kDraining while `migrating`), so the blob captures a clean
  // cut of the session — the bit-identity hinge.
  const Submit verdict =
      shards_[static_cast<std::size_t>(source)].server->submit(
          r.inner, [this, id, source, target_shard](Session& s) {
            std::string blob;
            try {
              blob = s.snapshot();
            } catch (const std::exception&) {
              abort_migration(id);  // finished sessions cannot move
              return;
            }
            finish_migration(id, source, target_shard, blob);
          });
  if (verdict != Submit::kAccepted) {
    r.migrating = false;
    --migrations_in_flight_;
    migration_cv_.notify_all();
    if (migration_failures_ != nullptr) migration_failures_->inc();
  }
  return verdict;
}

void Cluster::finish_migration(SessionId id, int source, int target,
                               const std::string& blob) {
  std::unique_ptr<Session> session;
  try {
    session = Session::restore(
        blob, shards_[static_cast<std::size_t>(target)].metrics.get());
  } catch (const std::exception&) {
    abort_migration(id);
    return;
  }
  SessionId inner2 = 0;
  const Submit verdict =
      shards_[static_cast<std::size_t>(target)].server->adopt(
          std::move(session), inner2);
  if (verdict != Submit::kAccepted) {
    abort_migration(id);
    return;
  }
  SessionId old_inner = 0;
  bool flipped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = routes_.find(id);
    if (it != routes_.end()) {
      old_inner = it->second.inner;
      it->second.shard = target;
      it->second.inner = inner2;
      it->second.migrating = false;
      flipped = true;
    }
    if (migrations_ != nullptr) migrations_->inc();
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record(obs::FlightEvent::kMigrate, id,
                            obs::monotonic_seconds(),
                            static_cast<double>(target),
                            static_cast<std::uint32_t>(source));
    }
    --migrations_in_flight_;
    migration_cv_.notify_all();
  }
  if (flipped) {
    // The source copy is now a shadow; retire it. Its strand (we are on
    // it) retires the entry once this op returns.
    shards_[static_cast<std::size_t>(source)].server->close(old_inner);
  } else {
    // Route vanished (cannot happen while `migrating` parks close, but
    // stay safe): the adopted copy is an orphan.
    shards_[static_cast<std::size_t>(target)].server->close(inner2);
  }
}

void Cluster::abort_migration(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(id);
  if (it != routes_.end()) it->second.migrating = false;
  if (migration_failures_ != nullptr) migration_failures_->inc();
  --migrations_in_flight_;
  migration_cv_.notify_all();
}

void Cluster::rebuild_ring_locked() {
  std::vector<int> removed;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!shards_[i].in_ring) removed.push_back(static_cast<int>(i));
  }
  ring_ = build_ring(static_cast<int>(shards_.size()), removed);
}

int Cluster::evacuate(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
    throw std::invalid_argument("evacuate: shard " + std::to_string(shard) +
                                " out of range");
  }
  const auto idx = static_cast<std::size_t>(shard);
  std::vector<std::pair<SessionId, int>> moves;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return 0;
    if (shards_[idx].in_ring) {
      int in_ring = 0;
      for (const Shard& s : shards_) in_ring += s.in_ring ? 1 : 0;
      if (in_ring <= 1) {
        throw std::invalid_argument(
            "evacuate: cannot remove the last in-ring shard");
      }
      shards_[idx].in_ring = false;
      rebuild_ring_locked();
    }
    for (const auto& [sid, r] : routes_) {
      if (r.shard == shard && !r.migrating) {
        // Consistent hashing: only this shard's keys remap, each to its
        // new ring position.
        moves.emplace_back(sid, ring_lookup(ring_, r.key));
      }
    }
  }
  for (const auto& [sid, target] : moves) {
    try {
      (void)migrate(sid, target);
    } catch (const std::exception&) {
      // Shrinking ring raced us; the session stays put.
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    migration_cv_.wait(lock,
                       [this] { return migrations_in_flight_ == 0; });
  }
  // Wait for the source server to retire the migrated shadows, then
  // drain it if it emptied (finished sessions that could not move stay
  // servable, so the shard is left undrained in that case). Bounded:
  // retirement is strand completion, not client-paced.
  std::size_t remaining = 0;
  for (int spin = 0; spin < 60'000; ++spin) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      remaining = 0;
      for (const auto& [sid, r] : routes_) {
        if (r.shard == shard) ++remaining;
      }
    }
    if (shards_[idx].server->session_count() <= remaining) break;
    sleep_ms(1);
  }
  if (remaining == 0 && !shards_[idx].drained) {
    shards_[idx].server->drain();
    shards_[idx].drained = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t still_here = 0;
  for (const auto& [sid, r] : routes_) {
    if (r.shard == shard) ++still_here;
  }
  return static_cast<int>(moves.size() - still_here);
}

void Cluster::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  for (Shard& s : shards_) {
    s.server->drain();
    s.drained = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  routes_.clear();
  if (sessions_gauge_ != nullptr) sessions_gauge_->set(0.0);
}

int Cluster::shards() const { return static_cast<int>(shards_.size()); }

std::size_t Cluster::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routes_.size();
}

std::size_t Cluster::session_count(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [sid, r] : routes_) {
    if (r.shard == shard) ++n;
  }
  return n;
}

int Cluster::shard_of(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(id);
  return it == routes_.end() ? -1 : it->second.shard;
}

int Cluster::shard_for_key(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_lookup(ring_, key);
}

bool Cluster::shard_in_ring(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[static_cast<std::size_t>(shard)].in_ring;
}

obs::MetricsSnapshot Cluster::merged_snapshot() const {
  obs::MetricsSnapshot out;
  if (cfg_.metrics != nullptr) out = cfg_.metrics->snapshot();
  obs::MetricsRegistry aggregate;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].metrics == nullptr) continue;
    obs::MetricsSnapshot snap = shards_[i].metrics->snapshot();
    aggregate.merge(snap);
    const std::string prefix = "serve.shard" + std::to_string(i) + ".";
    for (obs::MetricSample& s : snap.samples) {
      // "serve.requests" -> "serve.shard0.requests";
      // "engine.completions" -> "serve.shard0.engine.completions".
      const std::string_view plain =
          s.name.rfind("serve.", 0) == 0
              ? std::string_view(s.name).substr(6)
              : std::string_view(s.name);
      s.name = prefix + std::string(plain);
      out.samples.push_back(std::move(s));
    }
  }
  obs::MetricsSnapshot agg = aggregate.snapshot();
  for (obs::MetricSample& s : agg.samples) {
    out.samples.push_back(std::move(s));
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

Server& Cluster::shard_server(int shard) {
  PARSCHED_CHECK(shard >= 0 && shard < static_cast<int>(shards_.size()),
                 "shard index out of range");
  return *shards_[static_cast<std::size_t>(shard)].server;
}

}  // namespace parsched::serve
