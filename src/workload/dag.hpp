// parsched — precedence-constrained workload generators.
//
// Two canonical shapes:
//  * fork-join pipelines — a chain of stages, each forking into b parallel
//    branch tasks that join into a (poorly parallelizable) barrier task;
//    the classic BSP / map-reduce skeleton;
//  * layered random DAGs — tasks in layers, each depending on a random
//    subset of the previous layer.
#pragma once

#include <cstdint>

#include "simcore/precedence.hpp"

namespace parsched {

struct ForkJoinConfig {
  int machines = 16;
  int pipelines = 8;      ///< independent job pipelines (arrive Poisson)
  int stages = 3;         ///< fork-join stages per pipeline
  int branches = 4;       ///< parallel branch tasks per stage
  double branch_work = 4.0;
  double barrier_work = 1.0;
  double branch_alpha = 0.9;   ///< branches parallelize well
  double barrier_alpha = 0.1;  ///< barriers do not
  double mean_interarrival = 4.0;
  std::uint64_t seed = 1;
};

[[nodiscard]] DagInstance make_fork_join(const ForkJoinConfig& cfg);

struct LayeredDagConfig {
  int machines = 16;
  int layers = 4;
  int width = 8;          ///< tasks per layer
  double edge_prob = 0.5; ///< P(task depends on a given previous-layer task)
  double min_work = 1.0;
  double max_work = 8.0;
  double alpha = 0.5;
  std::uint64_t seed = 1;
};

[[nodiscard]] DagInstance make_layered_dag(const LayeredDagConfig& cfg);

}  // namespace parsched
