// parsched — randomized workload generation.
//
// Poisson arrivals with pluggable size and parallelizability laws, load
// expressed relative to system capacity. Used by the policy-mix bench (E9)
// and by every property-test suite as an instance fuzzer.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/instance.hpp"
#include "util/rng.hpp"

namespace parsched {

enum class SizeLaw {
  kUniform,       ///< uniform on [1, P]
  kLogUniform,    ///< uniform in log-space on [1, P]
  kBoundedPareto, ///< bounded Pareto on [1, P], tail index 1.1
  kBimodal,       ///< 90% size 1, 10% size P
};

[[nodiscard]] std::string to_string(SizeLaw law);

enum class AlphaLaw {
  kFixed,    ///< every job has alpha = alpha_lo
  kUniform,  ///< alpha uniform on [alpha_lo, alpha_hi]
  kMixed,    ///< 1/3 sequential, 1/3 power(alpha_lo..hi), 1/3 parallel
};

enum class WeightLaw {
  kUnit,         ///< w = 1 (the paper's unweighted objective)
  kUniform,      ///< w uniform on [1, 10]
  kInverseSize,  ///< w = P / size: small jobs are urgent (interactive mix)
};

struct RandomWorkloadConfig {
  int machines = 16;
  std::size_t jobs = 200;
  double P = 64.0;              ///< max/min size ratio
  SizeLaw size_law = SizeLaw::kLogUniform;
  AlphaLaw alpha_law = AlphaLaw::kFixed;
  double alpha_lo = 0.5;
  double alpha_hi = 0.5;
  WeightLaw weight_law = WeightLaw::kUnit;
  /// Offered load: expected arriving work per unit time, as a fraction of
  /// the m machines' aggregate capacity. 1.0 = critically loaded.
  double load = 0.8;
  std::uint64_t seed = 1;
};

[[nodiscard]] Instance make_random_instance(const RandomWorkloadConfig& cfg);

/// All jobs released at time 0 (the batch setting of [5], bench E6).
struct BatchWorkloadConfig {
  int machines = 16;
  std::size_t jobs = 64;
  double P = 64.0;
  SizeLaw size_law = SizeLaw::kLogUniform;
  AlphaLaw alpha_law = AlphaLaw::kUniform;
  double alpha_lo = 0.1;
  double alpha_hi = 0.9;
  std::uint64_t seed = 1;
};

[[nodiscard]] Instance make_batch_instance(const BatchWorkloadConfig& cfg);

}  // namespace parsched
