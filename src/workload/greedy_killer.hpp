// parsched — the Section-3 lower-bound instance for the Greedy hybrid.
//
// With epsilon = 1 - alpha and k = round(m^{1-epsilon}):
//   * m - k jobs of size m released at time 0 ("long");
//   * one job of size 1 released every 1/k time units on [0, m - 1/k)
//     ("short": m*k of them);
//   * from time m + 1, one job of size 1 every 1/k time units for X time
//     units ("stream": X*k of them; the paper takes X = m^2).
//
// Greedy devotes all m machines to the current unit job (each finishes in
// m^{-alpha} = 1/k time, exactly the arrival spacing), starving the long
// jobs for the entire stream: total flow Omega((m - m^{1-eps}) * X).
// The paper's explicit alternative schedule — long jobs one machine each on
// [0, m], every unit job one machine for one unit — achieves O(m^2 + X),
// giving the Omega(max{P, n^{1/3}}) lower bound (P = m here).
#pragma once

#include <cstdint>

#include "sched/opt/plan.hpp"
#include "simcore/instance.hpp"

namespace parsched {

struct GreedyKillerConfig {
  int machines = 64;      ///< m; also the long-job size, so P = m
  double alpha = 0.5;     ///< parallelizability exponent of every job
  double stream_time = -1.0;  ///< X; negative = the paper's m^2
};

struct GreedyKillerInstance {
  Instance instance;
  GreedyKillerConfig config;
  std::int64_t k = 0;  ///< round(m^{1-eps}) = unit-job arrival rate
  double X = 0.0;      ///< realized stream length
};

[[nodiscard]] GreedyKillerInstance make_greedy_killer(
    const GreedyKillerConfig& cfg);

/// The paper's alternative schedule (feasible; upper-bounds OPT):
/// long jobs get one machine each on [0, m]; every unit job gets one
/// machine for one time unit starting at its release.
[[nodiscard]] Plan greedy_killer_alternative_plan(
    const GreedyKillerInstance& gk);

}  // namespace parsched
