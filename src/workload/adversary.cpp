#include "workload/adversary.hpp"

#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"
#include "util/mathx.hpp"

namespace parsched {

AdversaryParams adversary_params(const AdversaryConfig& cfg) {
  if (cfg.machines < 2 || cfg.machines % 2 != 0) {
    throw std::invalid_argument("adversary needs an even m >= 2");
  }
  if (cfg.alpha < 0.0 || cfg.alpha >= 1.0) {
    throw std::invalid_argument("alpha must be in [0, 1)");
  }
  if (cfg.P < 4.0) throw std::invalid_argument("adversary needs P >= 4");
  const AdversaryConstants c = adversary_constants(cfg.alpha);
  AdversaryParams p;
  p.epsilon = c.epsilon;
  p.r = c.r;
  p.kappa = c.kappa;
  const double logP = log_inv(c.r, cfg.P);  // log_{1/r}(P)
  p.num_phases = std::max(1, static_cast<int>(std::floor(logP / 2.0)));
  p.threshold = static_cast<double>(cfg.machines) * logP;
  p.X = cfg.stream_time > 0.0 ? cfg.stream_time : cfg.P * cfg.P;
  if (p.X < 1.0) throw std::invalid_argument("stream_time must be >= 1");
  p.proof_condition = logP * logP < 0.25 * c.kappa * std::sqrt(cfg.P);
  return p;
}

AdversarySource::AdversarySource(const AdversaryConfig& cfg)
    : cfg_(cfg), params_(adversary_params(cfg)) {
  reset();
}

void AdversarySource::reset() {
  outcome_ = {};
  pending_.clear();
  current_phase_ = 0;
  part2_ = false;
  done_ = false;
  next_id_ = 0;
  stream_start_ = 0.0;
  stream_next_ = 0;
  stream_total_ = static_cast<std::int64_t>(std::llround(params_.X));
  schedule_phase(0);
}

void AdversarySource::schedule_phase(int i) {
  const double p_i = cfg_.P * std::pow(params_.r, i);
  const double s_i =
      outcome_.phase_start.empty()
          ? 0.0
          : outcome_.phase_start.back() + outcome_.phase_length.back();
  PARSCHED_CHECK(p_i >= 2.0, "phase too short for its unit jobs");
  outcome_.phase_start.push_back(s_i);
  outcome_.phase_length.push_back(p_i);
  current_phase_ = i;
  const SpeedupCurve curve = SpeedupCurve::power_law(cfg_.alpha);
  const int m = cfg_.machines;
  // m/2 long jobs of length p_i at the phase start.
  for (int j = 0; j < m / 2; ++j) {
    Job job;
    job.id = next_id_++;
    job.release = s_i;
    job.size = p_i;
    job.curve = curve;
    job.tag = {i, JobTag::Class::kLong, j};
    pending_.push_back(std::move(job));
  }
  // m unit jobs at each integer offset in the first half of the phase.
  const auto batches = static_cast<std::int64_t>(std::floor(p_i / 2.0));
  for (std::int64_t b = 0; b < batches; ++b) {
    for (int j = 0; j < m; ++j) {
      Job job;
      job.id = next_id_++;
      job.release = s_i + static_cast<double>(b);
      job.size = 1.0;
      job.curve = curve;
      job.tag = {i, JobTag::Class::kShort, b * m + j};
      pending_.push_back(std::move(job));
    }
  }
  decision_time_ = s_i + p_i / 2.0;
}

void AdversarySource::start_part2(double T, int phase, bool case1) {
  part2_ = true;
  decision_time_ = kInf;
  stream_start_ = T;
  stream_next_ = 0;
  outcome_.case1 = case1;
  outcome_.decision_phase = phase;
  outcome_.T = T;
}

double AdversarySource::next_time(const EngineView& view) {
  (void)view;
  double t = kInf;
  if (!pending_.empty()) t = std::min(t, pending_.front().release);
  if (!part2_) {
    t = std::min(t, decision_time_);
  } else if (stream_next_ < stream_total_) {
    t = std::min(t, stream_start_ + static_cast<double>(stream_next_));
  }
  return t;
}

std::vector<Job> AdversarySource::take(double t, const EngineView& view) {
  std::vector<Job> out;
  const double tol = 1e-9 * std::max(1.0, t);
  while (!pending_.empty() && pending_.front().release <= t + tol) {
    out.push_back(pending_.front());
    pending_.pop_front();
  }
  if (!part2_ && t >= decision_time_ - tol) {
    PARSCHED_CHECK(pending_.empty(),
                   "all phase arrivals precede the midpoint decision");
    const double short_backlog =
        view.remaining_tagged(JobTag::Class::kShort, current_phase_);
    if (short_backlog >= params_.threshold) {
      // Case 1: the online algorithm is hoarding unit jobs; punish now.
      start_part2(decision_time_, current_phase_, /*case1=*/true);
    } else if (current_phase_ + 1 < params_.num_phases) {
      schedule_phase(current_phase_ + 1);
    } else {
      // Case 2: all phases exhausted; part 2 starts at the phase end.
      start_part2(outcome_.phase_start.back() + outcome_.phase_length.back(),
                  current_phase_, /*case1=*/false);
    }
  }
  if (part2_ && stream_next_ < stream_total_) {
    const double batch_time =
        stream_start_ + static_cast<double>(stream_next_);
    if (batch_time <= t + tol) {
      const SpeedupCurve curve = SpeedupCurve::power_law(cfg_.alpha);
      for (int j = 0; j < cfg_.machines; ++j) {
        Job job;
        job.id = next_id_++;
        job.release = batch_time;
        job.size = 1.0;
        job.curve = curve;
        job.tag = {outcome_.decision_phase, JobTag::Class::kStream,
                   stream_next_ * cfg_.machines + j};
        out.push_back(std::move(job));
      }
      ++stream_next_;
      if (stream_next_ == stream_total_) done_ = true;
    }
  }
  return out;
}

Plan adversary_standard_plan(const Instance& realized,
                             const AdversaryConfig& cfg,
                             const AdversaryOutcome& outcome) {
  Plan plan;
  const double alpha = cfg.alpha;
  const double rate2 = std::pow(2.0, alpha);  // Γ(2)
  // End of the part-2 stream: last batch at T + (X-1), finished T + X.
  double stream_end = outcome.T;
  for (const Job& j : realized.jobs()) {
    if (j.tag.cls == JobTag::Class::kStream) {
      stream_end = std::max(stream_end, j.release + 1.0);
    }
  }

  for (const Job& j : realized.jobs()) {
    switch (j.tag.cls) {
      case JobTag::Class::kLong: {
        const int i = j.tag.phase;
        const double s_i = outcome.phase_start[i];
        const double p_i = outcome.phase_length[i];
        if (outcome.case1 && i == outcome.decision_phase) {
          // Deferred: two machines each, after the stream drains.
          plan.add(j.id, stream_end, stream_end + p_i / rate2, 2.0);
        } else {
          // Standard: one machine for the whole phase.
          plan.add(j.id, s_i, s_i + p_i, 1.0);
        }
        break;
      }
      case JobTag::Class::kShort: {
        const int i = j.tag.phase;
        const double p_i = outcome.phase_length[i];
        const int m = cfg.machines;
        const bool immediate =
            (outcome.case1 && i == outcome.decision_phase) ||
            (j.tag.index % m) < m / 2;
        const double start =
            immediate ? j.release : j.release + p_i / 2.0;
        plan.add(j.id, start, start + 1.0, 1.0);
        break;
      }
      case JobTag::Class::kStream:
        plan.add(j.id, j.release, j.release + 1.0, 1.0);
        break;
      case JobTag::Class::kNone:
        throw std::invalid_argument(
            "job without adversary tag in realized instance");
    }
  }
  return plan;
}

}  // namespace parsched
