#include "workload/dag.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace parsched {

DagInstance make_fork_join(const ForkJoinConfig& cfg) {
  if (cfg.pipelines < 1 || cfg.stages < 1 || cfg.branches < 1) {
    throw std::invalid_argument("fork-join needs >= 1 of everything");
  }
  Rng rng(cfg.seed);
  std::vector<DagNode> nodes;
  JobId next_id = 0;
  double release = 0.0;
  const SpeedupCurve branch_curve = SpeedupCurve::power_law(cfg.branch_alpha);
  const SpeedupCurve barrier_curve =
      SpeedupCurve::power_law(cfg.barrier_alpha);
  for (int p = 0; p < cfg.pipelines; ++p) {
    if (p > 0) release += rng.exponential(1.0 / cfg.mean_interarrival);
    JobId prev_barrier = kInvalidJob;
    for (int s = 0; s < cfg.stages; ++s) {
      std::vector<JobId> branch_ids;
      for (int b = 0; b < cfg.branches; ++b) {
        DagNode n;
        n.job.id = next_id++;
        n.job.release = release;
        n.job.size = cfg.branch_work;
        n.job.curve = branch_curve;
        n.job.tag = {s, JobTag::Class::kShort, b};
        if (prev_barrier != kInvalidJob) n.deps.push_back(prev_barrier);
        branch_ids.push_back(n.job.id);
        nodes.push_back(std::move(n));
      }
      DagNode barrier;
      barrier.job.id = next_id++;
      barrier.job.release = release;
      barrier.job.size = cfg.barrier_work;
      barrier.job.curve = barrier_curve;
      barrier.job.tag = {s, JobTag::Class::kLong, 0};
      barrier.deps = branch_ids;
      prev_barrier = barrier.job.id;
      nodes.push_back(std::move(barrier));
    }
  }
  return DagInstance(cfg.machines, std::move(nodes));
}

DagInstance make_layered_dag(const LayeredDagConfig& cfg) {
  if (cfg.layers < 1 || cfg.width < 1) {
    throw std::invalid_argument("layered dag needs >= 1 layer and width");
  }
  if (cfg.edge_prob < 0.0 || cfg.edge_prob > 1.0) {
    throw std::invalid_argument("edge_prob in [0, 1]");
  }
  Rng rng(cfg.seed);
  std::vector<DagNode> nodes;
  JobId next_id = 0;
  std::vector<JobId> prev_layer;
  const SpeedupCurve curve = SpeedupCurve::power_law(cfg.alpha);
  for (int l = 0; l < cfg.layers; ++l) {
    std::vector<JobId> layer;
    for (int w = 0; w < cfg.width; ++w) {
      DagNode n;
      n.job.id = next_id++;
      n.job.release = 0.0;
      n.job.size = rng.uniform(cfg.min_work, cfg.max_work);
      n.job.curve = curve;
      n.job.tag = {l, JobTag::Class::kNone, w};
      bool has_dep = false;
      for (JobId d : prev_layer) {
        if (rng.bernoulli(cfg.edge_prob)) {
          n.deps.push_back(d);
          has_dep = true;
        }
      }
      // Keep layers meaningful: every non-root layer task depends on at
      // least one predecessor.
      if (l > 0 && !has_dep && !prev_layer.empty()) {
        n.deps.push_back(prev_layer[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(prev_layer.size()) - 1))]);
      }
      layer.push_back(n.job.id);
      nodes.push_back(std::move(n));
    }
    prev_layer = std::move(layer);
  }
  return DagInstance(cfg.machines, std::move(nodes));
}

}  // namespace parsched
