#include "workload/random.hpp"

#include <cmath>
#include <stdexcept>

namespace parsched {

std::string to_string(SizeLaw law) {
  switch (law) {
    case SizeLaw::kUniform:
      return "uniform";
    case SizeLaw::kLogUniform:
      return "log-uniform";
    case SizeLaw::kBoundedPareto:
      return "bounded-pareto";
    case SizeLaw::kBimodal:
      return "bimodal";
  }
  return "?";
}

namespace {

double draw_size(Rng& rng, SizeLaw law, double P) {
  switch (law) {
    case SizeLaw::kUniform:
      return rng.uniform(1.0, P);
    case SizeLaw::kLogUniform:
      return rng.log_uniform(1.0, P);
    case SizeLaw::kBoundedPareto:
      return P > 1.0 ? rng.bounded_pareto(1.0, P, 1.1) : 1.0;
    case SizeLaw::kBimodal:
      return rng.bernoulli(0.9) ? 1.0 : P;
  }
  return 1.0;
}

SpeedupCurve draw_curve(Rng& rng, AlphaLaw law, double lo, double hi) {
  switch (law) {
    case AlphaLaw::kFixed:
      return SpeedupCurve::power_law(lo);
    case AlphaLaw::kUniform:
      return SpeedupCurve::power_law(rng.uniform(lo, hi));
    case AlphaLaw::kMixed: {
      const double u = rng.uniform01();
      if (u < 1.0 / 3.0) return SpeedupCurve::sequential();
      if (u < 2.0 / 3.0) return SpeedupCurve::power_law(rng.uniform(lo, hi));
      return SpeedupCurve::fully_parallel();
    }
  }
  return SpeedupCurve::fully_parallel();
}

double mean_size(SizeLaw law, double P) {
  switch (law) {
    case SizeLaw::kUniform:
      return (1.0 + P) / 2.0;
    case SizeLaw::kLogUniform:
      return P > 1.0 ? (P - 1.0) / std::log(P) : 1.0;
    case SizeLaw::kBoundedPareto: {
      // E[X] for bounded Pareto(lo=1, hi=P, a=1.1):
      //   a/(a−1) · (1 − P^(1−a)) / (1 − P^(−a))
      // (the general lo^a prefactor is identically 1 at lo = 1).
      const double a = 1.1;
      if (P <= 1.0) return 1.0;
      return a / (a - 1.0) * (1.0 - std::pow(P, 1.0 - a)) /
             (1.0 - std::pow(1.0 / P, a));
    }
    case SizeLaw::kBimodal:
      return 0.9 + 0.1 * P;
  }
  return 1.0;
}

}  // namespace

Instance make_random_instance(const RandomWorkloadConfig& cfg) {
  if (cfg.load <= 0.0) throw std::invalid_argument("load must be positive");
  if (cfg.P < 1.0) throw std::invalid_argument("P must be >= 1");
  Rng rng(cfg.seed);
  // Arrival rate so that (rate * E[size]) = load * m.
  const double rate = cfg.load * static_cast<double>(cfg.machines) /
                      mean_size(cfg.size_law, cfg.P);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    t += rng.exponential(rate);
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = t;
    j.size = draw_size(rng, cfg.size_law, cfg.P);
    j.curve = draw_curve(rng, cfg.alpha_law, cfg.alpha_lo, cfg.alpha_hi);
    switch (cfg.weight_law) {
      case WeightLaw::kUnit:
        break;
      case WeightLaw::kUniform:
        j.weight = rng.uniform(1.0, 10.0);
        break;
      case WeightLaw::kInverseSize:
        j.weight = cfg.P / j.size;
        break;
    }
    jobs.push_back(std::move(j));
  }
  return Instance(cfg.machines, std::move(jobs));
}

Instance make_batch_instance(const BatchWorkloadConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    Job j;
    j.id = static_cast<JobId>(i);
    j.release = 0.0;
    j.size = draw_size(rng, cfg.size_law, cfg.P);
    j.curve = draw_curve(rng, cfg.alpha_law, cfg.alpha_lo, cfg.alpha_hi);
    jobs.push_back(std::move(j));
  }
  return Instance(cfg.machines, std::move(jobs));
}

}  // namespace parsched
