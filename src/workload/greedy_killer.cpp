#include "workload/greedy_killer.hpp"

#include <cmath>
#include <stdexcept>

namespace parsched {

GreedyKillerInstance make_greedy_killer(const GreedyKillerConfig& cfg) {
  const int m = cfg.machines;
  if (m < 4) throw std::invalid_argument("greedy killer needs m >= 4");
  if (cfg.alpha <= 0.0 || cfg.alpha >= 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1)");
  }
  const double eps = 1.0 - cfg.alpha;
  const double k_exact = std::pow(static_cast<double>(m), 1.0 - eps);
  const auto k = static_cast<std::int64_t>(std::llround(k_exact));
  // The construction (and its alternative schedule) needs m^{1-eps} = m^alpha
  // to be a whole number: unit jobs arrive every 1/k and are processed on
  // all m machines in exactly 1/m^alpha, so the two must coincide. Pick
  // (m, alpha) pairs accordingly (e.g. alpha = 0.5 with square m).
  if (std::fabs(k_exact - static_cast<double>(k)) > 1e-9 * k_exact) {
    throw std::invalid_argument(
        "greedy killer needs m^{1-eps} integral; choose m accordingly");
  }
  if (k < 1 || k >= m) {
    throw std::invalid_argument("degenerate parameters: k must be in [1, m)");
  }
  const double X =
      cfg.stream_time > 0.0
          ? cfg.stream_time
          : static_cast<double>(m) * static_cast<double>(m);
  const double dt = 1.0 / static_cast<double>(k);
  const SpeedupCurve curve = SpeedupCurve::power_law(cfg.alpha);

  std::vector<Job> jobs;
  JobId next_id = 0;
  // Long jobs of size m at time 0.
  for (int i = 0; i < m - static_cast<int>(k); ++i) {
    Job j;
    j.id = next_id++;
    j.release = 0.0;
    j.size = static_cast<double>(m);
    j.curve = curve;
    j.tag = {0, JobTag::Class::kLong, i};
    jobs.push_back(std::move(j));
  }
  // Phase-1 unit jobs: one every 1/k on [0, m - 1/k].
  const auto n_phase1 = static_cast<std::int64_t>(m) * k;
  for (std::int64_t i = 0; i < n_phase1; ++i) {
    Job j;
    j.id = next_id++;
    j.release = static_cast<double>(i) * dt;
    j.size = 1.0;
    j.curve = curve;
    j.tag = {0, JobTag::Class::kShort, i};
    jobs.push_back(std::move(j));
  }
  // Stream: from m + 1, one every 1/k for X time units.
  const auto n_stream = static_cast<std::int64_t>(std::floor(X)) * k;
  for (std::int64_t i = 0; i < n_stream; ++i) {
    Job j;
    j.id = next_id++;
    j.release = static_cast<double>(m) + 1.0 + static_cast<double>(i) * dt;
    j.size = 1.0;
    j.curve = curve;
    j.tag = {1, JobTag::Class::kStream, i};
    jobs.push_back(std::move(j));
  }

  GreedyKillerInstance out{Instance(m, std::move(jobs)), cfg, k, X};
  return out;
}

Plan greedy_killer_alternative_plan(const GreedyKillerInstance& gk) {
  Plan plan;
  const double m = static_cast<double>(gk.config.machines);
  const double dt = 1.0 / static_cast<double>(gk.k);  // = 1 / m^alpha
  for (const Job& j : gk.instance.jobs()) {
    switch (j.tag.cls) {
      case JobTag::Class::kLong:
        // One machine for the whole horizon [0, m]; rate Γ(1) = 1, size m.
        plan.add(j.id, 0.0, m, 1.0);
        break;
      case JobTag::Class::kShort:
        // Phase-1 unit job: one machine for one unit of time upon arrival.
        // At any instant exactly k unit jobs run next to the m - k longs.
        plan.add(j.id, j.release, j.release + 1.0, 1.0);
        break;
      case JobTag::Class::kStream:
        // Stream job: ALL m machines (the long jobs are gone by m < m+1).
        // Rate Γ(m) = m^alpha = k, so it finishes in exactly 1/k — just as
        // the next stream job arrives. Total stream flow is X, which is
        // what makes OPT = O(m^2) while Greedy pays Omega(m^3) (Lemma 10).
        plan.add(j.id, j.release, j.release + dt, m);
        break;
      case JobTag::Class::kNone:
        break;
    }
  }
  return plan;
}

}  // namespace parsched
