// parsched — the Section-4 adaptive lower-bound adversary.
//
// For a fixed alpha in [0, 1), let eps = 1 - alpha, r = (1 - 2^{-eps})/2,
// L = log_{1/r}(P) / 2. The input has two parts.
//
// Part 1 — at most L phases. Phase i (0-based) has length p_i = P * r^i
// and starts at s_i = sum_{j<i} p_j. At s_i the adversary releases m/2
// "long" jobs of size p_i; at each integer offset j = 0 .. floor(p_i/2)-1
// it releases m "short" jobs of size 1... (the paper releases m jobs of
// length 1 at times s_i + j). At the midpoint d_i = s_i + p_i/2 the
// adversary inspects the online algorithm: if the remaining work from the
// phase-i short jobs is at least m * log_{1/r}(P), it jumps to part 2 at
// T = d_i ("case 1"); otherwise it continues with phase i+1, or — after
// the last phase — starts part 2 at T = s_{L-1} + p_{L-1} ("case 2").
//
// Part 2 — a stream of m unit jobs at times T + k for k = 0 .. X-1
// (paper: X = P^2).
//
// Either way the online algorithm carries Omega(m log P) unfinished jobs
// through the whole stream while the paper's explicit "standard schedule"
// (implemented in adversary_standard_plan) achieves O(m P^2) total flow —
// hence the Omega(log P) competitive lower bound of Theorem 2.
//
// The adversary is realized as an adaptive ArrivalSource: it decides at
// run time, based on the observed engine state, which branch to take —
// exactly the power the lower-bound proof grants it.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/opt/plan.hpp"
#include "simcore/instance.hpp"
#include "simcore/source.hpp"

namespace parsched {

struct AdversaryConfig {
  int machines = 16;   ///< m; must be even (m/2 long jobs per phase)
  double P = 64.0;     ///< longest job length; sizes lie in [1, P]
  double alpha = 0.5;  ///< parallelizability exponent of every job
  /// Part-2 stream length; negative = the paper's P^2. Large P sweeps may
  /// cap this for tractability (benches print the cap when applied).
  double stream_time = -1.0;
};

/// Derived parameters of the construction.
struct AdversaryParams {
  double epsilon = 0.5;   ///< 1 - alpha
  double r = 0.25;        ///< phase-length reduction factor
  double kappa = 0.0;     ///< (2^eps - 1)/(2^eps + 1)
  int num_phases = 0;     ///< L = floor(log_{1/r}(P) / 2), >= 1
  double threshold = 0.0; ///< m * log_{1/r}(P), the midpoint trigger
  double X = 0.0;         ///< realized stream length
  /// The paper's technical side condition log^2_{1/r}(P) < kappa*sqrt(P)/4
  /// (guarantees the case-2 counting argument). The construction runs
  /// either way; benches report this flag.
  bool proof_condition = false;
};

[[nodiscard]] AdversaryParams adversary_params(const AdversaryConfig& cfg);

/// What the adversary ended up doing (available after the run).
struct AdversaryOutcome {
  bool case1 = false;      ///< triggered at a midpoint
  int decision_phase = 0;  ///< the phase at whose midpoint/end part 2 began
  double T = 0.0;          ///< start of part 2
  std::vector<double> phase_start;   ///< realized s_i
  std::vector<double> phase_length;  ///< realized p_i
};

/// The adaptive arrival source. Use with Engine::run; after the run query
/// outcome() and build the OPT upper-bound plan with
/// adversary_standard_plan().
class AdversarySource final : public ArrivalSource {
 public:
  explicit AdversarySource(const AdversaryConfig& cfg);

  [[nodiscard]] double next_time(const EngineView& view) override;
  std::vector<Job> take(double t, const EngineView& view) override;
  void reset() override;

  [[nodiscard]] const AdversaryParams& params() const { return params_; }
  [[nodiscard]] const AdversaryOutcome& outcome() const { return outcome_; }

 private:
  void schedule_phase(int i);
  void start_part2(double T, int phase, bool case1);

  AdversaryConfig cfg_;
  AdversaryParams params_;
  AdversaryOutcome outcome_;

  // Pending scheduled arrivals for the current phase (time-sorted).
  std::deque<Job> pending_;
  double decision_time_ = 0.0;  ///< next midpoint; kInf once in part 2
  int current_phase_ = 0;
  bool part2_ = false;
  bool done_ = false;
  JobId next_id_ = 0;
  // Lazily generated part-2 stream.
  double stream_start_ = 0.0;
  std::int64_t stream_next_ = 0;
  std::int64_t stream_total_ = 0;
};

/// The paper's explicit feasible schedule for the *realized* instance
/// (standard schedules for full phases; in case 1 the decision phase's
/// shorts run immediately and its longs run on two machines each after the
/// stream). Its flow is O(m P^2) and upper-bounds OPT.
[[nodiscard]] Plan adversary_standard_plan(const Instance& realized,
                                           const AdversaryConfig& cfg,
                                           const AdversaryOutcome& outcome);

}  // namespace parsched
