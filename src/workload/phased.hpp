// parsched — multi-phase job workloads (the related-work model).
//
// The arbitrary-speedup-curve literature ([Edmonds, Scheduling in the
// dark], [Edmonds–Pruhs]) models a job as a *sequence of phases*, each
// with its own speedup curve, invisible to a non-clairvoyant scheduler.
// The canonical motivating shape is a data-analytics job: a highly
// parallel "map"/scan phase followed by a poorly parallelizable
// "reduce"/merge phase, possibly alternating.
#pragma once

#include <cstdint>

#include "simcore/instance.hpp"

namespace parsched {

struct PhasedWorkloadConfig {
  int machines = 16;
  std::size_t jobs = 200;
  double P = 64.0;  ///< total-size ratio bound (sizes drawn log-uniform)
  /// Number of (parallel, bottleneck) phase pairs per job, drawn uniformly
  /// from [1, max_rounds].
  int max_rounds = 3;
  /// Alpha of the parallel phases (close to 1) and of the bottleneck
  /// phases (close to 0).
  double parallel_alpha = 0.95;
  double bottleneck_alpha = 0.1;
  /// Fraction of each round's work that is the bottleneck phase.
  double bottleneck_fraction = 0.25;
  double load = 0.8;  ///< offered load as in RandomWorkloadConfig
  std::uint64_t seed = 1;
};

/// Poisson stream of alternating parallel/bottleneck multi-phase jobs.
[[nodiscard]] Instance make_phased_instance(const PhasedWorkloadConfig& cfg);

}  // namespace parsched
