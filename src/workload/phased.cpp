#include "workload/phased.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace parsched {

Instance make_phased_instance(const PhasedWorkloadConfig& cfg) {
  if (cfg.max_rounds < 1) throw std::invalid_argument("max_rounds >= 1");
  if (cfg.bottleneck_fraction <= 0.0 || cfg.bottleneck_fraction >= 1.0) {
    throw std::invalid_argument("bottleneck_fraction in (0, 1)");
  }
  Rng rng(cfg.seed);
  const SpeedupCurve par = SpeedupCurve::power_law(cfg.parallel_alpha);
  const SpeedupCurve bot = SpeedupCurve::power_law(cfg.bottleneck_alpha);
  // Mean size of log-uniform on [1, P].
  const double mean_size =
      cfg.P > 1.0 ? (cfg.P - 1.0) / std::log(cfg.P) : 1.0;
  const double rate =
      cfg.load * static_cast<double>(cfg.machines) / mean_size;

  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    t += rng.exponential(rate);
    const double size = rng.log_uniform(1.0, cfg.P);
    const int rounds = static_cast<int>(
        rng.uniform_int(1, cfg.max_rounds));
    const double per_round = size / rounds;
    std::vector<JobPhase> phases;
    phases.reserve(2 * static_cast<std::size_t>(rounds));
    for (int r = 0; r < rounds; ++r) {
      phases.push_back(
          {per_round * (1.0 - cfg.bottleneck_fraction), par});
      phases.push_back({per_round * cfg.bottleneck_fraction, bot});
    }
    Job j = make_phased_job(static_cast<JobId>(i), t, std::move(phases));
    jobs.push_back(std::move(j));
  }
  return Instance(cfg.machines, std::move(jobs));
}

}  // namespace parsched
