#include "sched/weighted.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "check/contract.hpp"

namespace parsched {

PARSCHED_HOT void WeightedIsrpt::allocate(const SchedulerContext& ctx,
                                          Allocation& out) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  if (n < m) {
    const double share =
        static_cast<double>(ctx.machines()) / static_cast<double>(n);
    for (double& s : out.shares) s = share;
    return;
  }
  // Select the m jobs with least remaining/weight (selection, not sort).
  idx_.resize(n);
  std::iota(idx_.begin(), idx_.end(), std::size_t{0});
  auto less = [&](std::size_t a, std::size_t b) {
    const double da = alive[a].remaining / alive[a].weight;
    const double db = alive[b].remaining / alive[b].weight;
    if (da != db) return da < db;
    if (alive[a].release != alive[b].release) {
      return alive[a].release < alive[b].release;
    }
    return alive[a].id < alive[b].id;
  };
  std::nth_element(idx_.begin(), idx_.begin() + static_cast<std::ptrdiff_t>(m),
                   idx_.end(), less);
  for (std::size_t k = 0; k < m; ++k) out.shares[idx_[k]] = 1.0;
}

double weighted_span_lower_bound(const Instance& instance) {
  double total = 0.0;
  const double md = static_cast<double>(instance.machines());
  for (const Job& j : instance.jobs()) {
    double span = 0.0;
    if (j.phases.empty()) {
      span = j.size / j.curve.rate(md);
    } else {
      for (const JobPhase& p : j.phases) span += p.work / p.curve.rate(md);
    }
    total += j.weight * span;
  }
  return total;
}

}  // namespace parsched
