// parsched — non-clairvoyant policies: SETF and MLF.
//
// Intermediate-SRPT needs to know remaining work. The non-clairvoyant
// literature the paper leans on ([4], [6]) only observes what has been
// *done*. Two classics, adapted to malleable jobs:
//
//  * SETF — Shortest Elapsed (processed) Time First: serve the jobs that
//    have received the least processing. Pure SETF degenerates into
//    infinitesimal round-robin (served jobs immediately stop being the
//    least-served), so the standard realizable form uses a quantum: the
//    current least-processed set holds its allocation for q time units.
//
//  * MLF — Multi-Level Feedback: jobs sit in levels with geometrically
//    doubling quanta (level k holds jobs with processed work in
//    [2^k − 1, 2^{k+1} − 1)); the lowest-level jobs are served first, one
//    processor each. Level-boundary crossings are exact engine events
//    (the policy computes the earliest crossing under current rates), so
//    MLF needs no quantum at all.
//
// Both treat processed work (job.size - remaining is not consulted;
// processing is tracked from observed progress) as the only job state —
// no remaining-work clairvoyance.
#pragma once

#include <vector>

#include "simcore/scheduler.hpp"

namespace parsched {

class Setf final : public Scheduler {
 public:
  using Scheduler::allocate;
  explicit Setf(double quantum = 0.1);
  [[nodiscard]] std::string name() const override;
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  double quantum_;
  std::vector<std::size_t> idx_;  // per-decision selection scratch
};

class Mlf final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override { return "MLF"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  std::vector<std::size_t> idx_;  // per-decision sort scratch
};

}  // namespace parsched
