// parsched — Sequential-SRPT (Leonardi–Raz style).
//
// The up-to-m tasks with the least unprocessed work are each allocated one
// processor. O(log P)-competitive for fully *sequential* jobs [10]; on
// intermediate jobs it wastes the ability to parallelize when underloaded.
#pragma once

#include "simcore/scheduler.hpp"

namespace parsched {

class SequentialSrpt final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override { return "Sequential-SRPT"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
};

}  // namespace parsched
