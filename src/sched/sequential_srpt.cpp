#include "sched/sequential_srpt.hpp"

#include <algorithm>

namespace parsched {

Allocation SequentialSrpt::allocate(const SchedulerContext& ctx) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  for (std::size_t i : ctx.smallest_remaining(std::min(n, m))) {
    alloc.shares[i] = 1.0;
  }
  return alloc;
}

}  // namespace parsched
