#include "sched/sequential_srpt.hpp"

#include <algorithm>

#include "check/contract.hpp"

namespace parsched {

PARSCHED_HOT void SequentialSrpt::allocate(const SchedulerContext& ctx,
                                           Allocation& out) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  for (std::size_t i : ctx.smallest_remaining(std::min(n, m))) {
    out.shares[i] = 1.0;
  }
}

}  // namespace parsched
