#include "sched/variants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"

namespace parsched {

IsrptThreshold::IsrptThreshold(double theta) : theta_(theta) {
  if (theta < 1.0) throw std::invalid_argument("theta must be >= 1");
}

std::string IsrptThreshold::name() const {
  std::ostringstream os;
  os << "ISRPT-Threshold(" << theta_ << ")";
  return os.str();
}

PARSCHED_HOT void IsrptThreshold::allocate(const SchedulerContext& ctx,
                                           Allocation& out) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  if (static_cast<double>(n) >= theta_ * static_cast<double>(m)) {
    // Sequential mode: the m shortest jobs get one machine each.
    for (std::size_t i : ctx.smallest_remaining(m)) out.shares[i] = 1.0;
  } else {
    // Equipartition over all alive jobs (shares may be < 1 when n > m,
    // which is exactly the behaviour the theta knob is probing).
    const double share =
        static_cast<double>(ctx.machines()) / static_cast<double>(n);
    for (double& s : out.shares) s = share;
  }
}

PARSCHED_HOT void IsrptBoostShortest::allocate(const SchedulerContext& ctx,
                                  Allocation& out) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  const auto order = ctx.smallest_remaining(std::min(n, m));
  if (n >= m) {
    for (std::size_t i : order) out.shares[i] = 1.0;
  } else {
    // One processor each; the shortest job hoards all leftovers.
    for (std::size_t i : order) out.shares[i] = 1.0;
    out.shares[order.front()] += static_cast<double>(m - n);
  }
}

QuantizedEqui::QuantizedEqui(double quantum) : quantum_(quantum) {
  if (!(quantum > 0.0)) throw std::invalid_argument("quantum must be > 0");
}

std::string QuantizedEqui::name() const {
  std::ostringstream os;
  os << "Quantized-EQUI(q=" << quantum_ << ")";
  return os.str();
}

PARSCHED_HOT void QuantizedEqui::allocate(const SchedulerContext& ctx,
                                          Allocation& out) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  // Stable order by arrival sequence so rotation is deterministic: the
  // earliest-first position i is the latest-first span read backwards
  // (latest[n-1-i]) — same sequence the old reversed copy produced,
  // without mutating (or copying) the shared cached order.
  const auto latest = ctx.by_latest_arrival();
  const auto earliest = [&](std::size_t i) { return latest[n - 1 - i]; };
  if (n <= m) {
    // Whole processors, remainder rotated round-robin by arrival sequence.
    const std::size_t base = m / n;
    const std::size_t extra = m % n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t rotated = (i + round_) % n;
      out.shares[earliest(rotated)] =
          static_cast<double>(base + (i < extra ? 1 : 0));
    }
  } else {
    // More jobs than machines: rotate which m jobs run this quantum.
    for (std::size_t i = 0; i < m; ++i) {
      out.shares[earliest((i + round_) % n)] = 1.0;
    }
  }
  ++round_;
  out.reconsider_at = ctx.time() + quantum_;
}

std::string QuantizedEqui::save_state() const {
  return std::to_string(round_);
}

void QuantizedEqui::load_state(const std::string& state) {
  std::size_t used = 0;
  std::uint64_t round = 0;
  try {
    round = std::stoull(state, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used == 0 || used != state.size()) {
    throw std::invalid_argument("bad quantized-equi state: '" + state + "'");
  }
  round_ = round;
}

}  // namespace parsched
