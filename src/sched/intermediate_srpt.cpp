#include "sched/intermediate_srpt.hpp"

#include "check/contract.hpp"

namespace parsched {

PARSCHED_HOT void IntermediateSrpt::allocate(const SchedulerContext& ctx,
                                Allocation& out) {
  const std::size_t n = ctx.alive().size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  if (n >= m) {
    // Overloaded: Sequential-SRPT — one processor to each of the m jobs
    // with the least remaining work.
    for (std::size_t i : ctx.smallest_remaining(m)) out.shares[i] = 1.0;
  } else {
    // Underloaded: equipartition (Round Robin / Processor Sharing).
    const double share = static_cast<double>(ctx.machines()) /
                         static_cast<double>(n);
    for (double& s : out.shares) s = share;
  }
}

}  // namespace parsched
