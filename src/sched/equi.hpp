// parsched — EQUI (equipartition / processor sharing) and LAPS.
//
// EQUI gives every alive job an m/|A(t)| share. Edmonds et al. [5] showed
// it is 2-competitive for total flow time with arbitrary speedup curves
// when all jobs arrive together (batch release); Edmonds [4] showed it is
// (2+eps)-speed O(1)-competitive with arrivals.
//
// LAPS(beta) (Edmonds & Pruhs [6]) equipartitions among only the
// ceil(beta*|A(t)|) latest-arriving jobs and is scalable
// ((1+eps)-speed O(1)-competitive).
#pragma once

#include "simcore/scheduler.hpp"

namespace parsched {

class Equi final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override { return "EQUI"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
};

class Laps final : public Scheduler {
 public:
  using Scheduler::allocate;
  /// beta in (0, 1]; beta = 1 degenerates to EQUI.
  explicit Laps(double beta);
  [[nodiscard]] std::string name() const override;
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  double beta_;
};

/// LAPS's mirror image: equipartition among the ceil(beta*|A(t)|)
/// *earliest*-arriving jobs. This is the natural policy for the MAXIMUM
/// flow-time objective studied in [Pruhs–Robert–Schabanel] / [Robert–
/// Schabanel] for arbitrary speedup curves: always push the oldest work.
/// It trades average flow for bounded staleness (bench E14).
class OldestEqui final : public Scheduler {
 public:
  using Scheduler::allocate;
  explicit OldestEqui(double beta);
  [[nodiscard]] std::string name() const override;
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  double beta_;
};

}  // namespace parsched
