// parsched — the natural Greedy hybrid of Section 3.
//
// "At all times allocate processors to jobs in such a way as to maximize
//  the instantaneous rate at which the fractional number of unfinished
//  jobs would be decreased, if it was the case that the original work of
//  each job was its remaining unprocessed work."
//
// For concave curves this is implemented exactly as in the paper: whole
// processors are handed out one at a time, each to the job j maximizing
// the marginal gain (Γ_j(k_j + 1) − Γ_j(k_j)) / p_j(t), where k_j
// processors were already assigned to j.
//
// Lemma 10: despite being the "obvious" generalization of Parallel-SRPT
// and Sequential-SRPT, this policy is Ω(max{P, n^{1/3}})-competitive —
// exponentially worse than Intermediate-SRPT's O(log P).
//
// Between arrivals/completions the marginal priorities drift as remaining
// works decrease, so the policy reports a reconsideration horizon: the
// earliest future instant at which an unassigned (or differently assigned)
// job's marginal priority would overtake a currently granted one. All
// priorities are of the form c / p_j(t) with p_j(t) linear in t, so each
// pairwise crossing has a closed form and the trajectory stays exact.
#pragma once

#include <vector>

#include "simcore/scheduler.hpp"
#include "util/mathx.hpp"

namespace parsched {

class GreedyHybrid final : public Scheduler {
 public:
  using Scheduler::allocate;
  /// `max_quantum`: optional upper bound on the reconsideration interval
  /// (kInf = rely purely on exact crossing detection).
  explicit GreedyHybrid(double max_quantum = kInf);

  [[nodiscard]] std::string name() const override { return "Greedy-Hybrid"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  /// Priority of granting job `idx` its (k+1)-th processor.
  struct Candidate {
    double priority;   // marginal(k) / remaining
    double remaining;  // tie-break: prefer shorter jobs
    std::size_t idx;
    int k;  // processors already granted

    bool operator<(const Candidate& other) const {
      // The heap algorithms build a max-heap on operator<.
      if (priority != other.priority) return priority < other.priority;
      if (remaining != other.remaining) return remaining > other.remaining;
      return idx > other.idx;
    }
  };

  double max_quantum_;
  // Per-decision scratch (resized each call, capacity reused so the hot
  // path allocates nothing): the candidate heap, granted whole processors
  // per job, and current rates for the crossing-time horizon.
  std::vector<Candidate> heap_;
  std::vector<int> granted_;
  std::vector<double> rate_;
};

}  // namespace parsched
