// parsched — the natural Greedy hybrid of Section 3.
//
// "At all times allocate processors to jobs in such a way as to maximize
//  the instantaneous rate at which the fractional number of unfinished
//  jobs would be decreased, if it was the case that the original work of
//  each job was its remaining unprocessed work."
//
// For concave curves this is implemented exactly as in the paper: whole
// processors are handed out one at a time, each to the job j maximizing
// the marginal gain (Γ_j(k_j + 1) − Γ_j(k_j)) / p_j(t), where k_j
// processors were already assigned to j.
//
// Lemma 10: despite being the "obvious" generalization of Parallel-SRPT
// and Sequential-SRPT, this policy is Ω(max{P, n^{1/3}})-competitive —
// exponentially worse than Intermediate-SRPT's O(log P).
//
// Between arrivals/completions the marginal priorities drift as remaining
// works decrease, so the policy reports a reconsideration horizon: the
// earliest future instant at which an unassigned (or differently assigned)
// job's marginal priority would overtake a currently granted one. All
// priorities are of the form c / p_j(t) with p_j(t) linear in t, so each
// pairwise crossing has a closed form and the trajectory stays exact.
#pragma once

#include "simcore/scheduler.hpp"
#include "util/mathx.hpp"

namespace parsched {

class GreedyHybrid final : public Scheduler {
 public:
  /// `max_quantum`: optional upper bound on the reconsideration interval
  /// (kInf = rely purely on exact crossing detection).
  explicit GreedyHybrid(double max_quantum = kInf);

  [[nodiscard]] std::string name() const override { return "Greedy-Hybrid"; }
  [[nodiscard]] Allocation allocate(const SchedulerContext& ctx) override;

 private:
  double max_quantum_;
};

}  // namespace parsched
