// parsched — scheduler registry.
//
// Central place that knows every policy in the library; used by the
// examples ("--policy=..."), by the portfolio OPT upper bound, and by the
// policy-comparison benches.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simcore/scheduler.hpp"

namespace parsched {

/// Construct a scheduler by name. Supported names:
///   "isrpt"            Intermediate-SRPT (the paper's algorithm)
///   "seq-srpt"         Sequential-SRPT
///   "par-srpt"         Parallel-SRPT
///   "greedy"           the Section-3 natural greedy hybrid
///   "equi"             equipartition
///   "laps" / "laps:B"  LAPS with beta B (default 0.5)
///   "oldest-equi:B"    equipartition among the B-fraction oldest jobs
///                      (max-flow-time policy; default B = 0.5)
///   "setf" / "setf:Q"  shortest-elapsed-time-first with quantum Q
///   "mlf"              multi-level feedback (non-clairvoyant, exact)
///   "wisrpt"           Weighted Intermediate-SRPT (least remaining/weight)
///   "isrpt-thresh:T"   ISRPT with equipartition threshold theta = T
///   "isrpt-boost"      over-allocates leftovers to the shortest job
///   "quantized-equi:Q" round-robin EQUI with time quantum Q
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name);

/// Names of the standard online policies the paper discusses (used by the
/// portfolio and comparison benches).
[[nodiscard]] std::vector<std::string> standard_policy_names();

}  // namespace parsched
