#include "sched/greedy_hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contract.hpp"

namespace parsched {

GreedyHybrid::GreedyHybrid(double max_quantum) : max_quantum_(max_quantum) {
  if (!(max_quantum > 0.0)) {
    throw std::invalid_argument("max_quantum must be positive");
  }
}

PARSCHED_HOT void GreedyHybrid::allocate(const SchedulerContext& ctx,
                                         Allocation& out) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const int m = ctx.machines();
  out.reset(n);
  if (n == 0) return;

  // Hand out whole processors one at a time to the best marginal ratio.
  // The member vector + push_heap/pop_heap pair is the same algorithm
  // std::priority_queue is specified in terms of, so the grant sequence
  // (including tie resolution) is unchanged from the priority_queue days.
  granted_.assign(n, 0);
  heap_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    heap_.push_back({alive[i].curve.marginal(0.0) / alive[i].remaining,
                     alive[i].remaining, i, 0});
    std::push_heap(heap_.begin(), heap_.end());
  }
  for (int p = 0; p < m && !heap_.empty(); ++p) {
    std::pop_heap(heap_.begin(), heap_.end());
    const Candidate top = heap_.back();
    heap_.pop_back();
    if (top.priority <= 0.0) break;  // no further marginal gain anywhere
    granted_[top.idx] += 1;
    const AliveJob& j = alive[top.idx];
    heap_.push_back({j.curve.marginal(static_cast<double>(granted_[top.idx])) /
                         j.remaining,
                     j.remaining, top.idx, granted_[top.idx]});
    std::push_heap(heap_.begin(), heap_.end());
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.shares[i] = static_cast<double>(granted_[i]);
  }

  // Reconsideration horizon: priorities are c / p_j(t) with p_j(t) linear
  // (slope -rate_j). The current grant stays greedy-consistent while every
  // granted job's *last* marginal priority dominates every job's *next*
  // marginal priority. Find the earliest pairwise crossing.
  const double now = ctx.time();
  double horizon = (max_quantum_ == kInf) ? kInf : now + max_quantum_;
  rate_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    rate_[i] = alive[i].curve.rate(out.shares[i]);
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (granted_[j] == 0) continue;
    const double a = alive[j].curve.marginal(
        static_cast<double>(granted_[j] - 1));  // last granted marginal
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j) continue;
      const double b =
          alive[k].curve.marginal(static_cast<double>(granted_[k]));
      if (b <= 0.0) continue;
      // Crossing of a / (p_j - r_j s) and b / (p_k - r_k s), s = t - now:
      //   a (p_k - r_k s) = b (p_j - r_j s)
      const double num = a * alive[k].remaining - b * alive[j].remaining;
      const double den = a * rate_[k] - b * rate_[j];
      if (den <= 0.0) continue;  // never crosses going forward
      const double s = num / den;
      if (s > 1e-12) horizon = std::min(horizon, now + s);
    }
  }
  out.reconsider_at = horizon;
}

}  // namespace parsched
