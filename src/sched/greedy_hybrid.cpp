#include "sched/greedy_hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

namespace parsched {

GreedyHybrid::GreedyHybrid(double max_quantum) : max_quantum_(max_quantum) {
  if (!(max_quantum > 0.0)) {
    throw std::invalid_argument("max_quantum must be positive");
  }
}

namespace {

/// Priority of granting job `idx` its (k+1)-th processor.
struct Candidate {
  double priority;   // marginal(k) / remaining
  double remaining;  // tie-break: prefer shorter jobs
  std::size_t idx;
  int k;  // processors already granted

  bool operator<(const Candidate& other) const {
    // std::priority_queue is a max-heap on operator<.
    if (priority != other.priority) return priority < other.priority;
    if (remaining != other.remaining) return remaining > other.remaining;
    return idx > other.idx;
  }
};

}  // namespace

Allocation GreedyHybrid::allocate(const SchedulerContext& ctx) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const int m = ctx.machines();
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  if (n == 0) return alloc;

  // Hand out whole processors one at a time to the best marginal ratio.
  std::vector<int> granted(n, 0);
  std::priority_queue<Candidate> heap;
  for (std::size_t i = 0; i < n; ++i) {
    heap.push({alive[i].curve.marginal(0.0) / alive[i].remaining,
               alive[i].remaining, i, 0});
  }
  for (int p = 0; p < m && !heap.empty(); ++p) {
    Candidate top = heap.top();
    heap.pop();
    if (top.priority <= 0.0) break;  // no further marginal gain anywhere
    granted[top.idx] += 1;
    const AliveJob& j = alive[top.idx];
    heap.push({j.curve.marginal(static_cast<double>(granted[top.idx])) /
                   j.remaining,
               j.remaining, top.idx, granted[top.idx]});
  }
  for (std::size_t i = 0; i < n; ++i) {
    alloc.shares[i] = static_cast<double>(granted[i]);
  }

  // Reconsideration horizon: priorities are c / p_j(t) with p_j(t) linear
  // (slope -rate_j). The current grant stays greedy-consistent while every
  // granted job's *last* marginal priority dominates every job's *next*
  // marginal priority. Find the earliest pairwise crossing.
  const double now = ctx.time();
  double horizon = (max_quantum_ == kInf) ? kInf : now + max_quantum_;
  std::vector<double> rate(n);
  for (std::size_t i = 0; i < n; ++i) {
    rate[i] = alive[i].curve.rate(alloc.shares[i]);
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (granted[j] == 0) continue;
    const double a = alive[j].curve.marginal(
        static_cast<double>(granted[j] - 1));  // last granted marginal
    for (std::size_t k = 0; k < n; ++k) {
      if (k == j) continue;
      const double b =
          alive[k].curve.marginal(static_cast<double>(granted[k]));
      if (b <= 0.0) continue;
      // Crossing of a / (p_j - r_j s) and b / (p_k - r_k s), s = t - now:
      //   a (p_k - r_k s) = b (p_j - r_j s)
      const double num = a * alive[k].remaining - b * alive[j].remaining;
      const double den = a * rate[k] - b * rate[j];
      if (den <= 0.0) continue;  // never crosses going forward
      const double s = num / den;
      if (s > 1e-12) horizon = std::min(horizon, now + s);
    }
  }
  alloc.reconsider_at = horizon;
  return alloc;
}

}  // namespace parsched
