// parsched — ablation variants of Intermediate-SRPT.
//
// These exist to empirically justify the design choices in the paper's
// algorithm (bench E10):
//  * IsrptThreshold(theta)    — switch to equipartition already when
//                               |A(t)| < theta * m (paper: theta = 1);
//  * IsrptBoostShortest       — underloaded: give every job one processor
//                               and the *shortest* job all leftovers (the
//                               "over-allocate to one job" mistake the
//                               paper attributes to Greedy);
//  * QuantizedEqui(q)         — EQUI emulated with whole processors via
//                               round-robin time slices of length q (shows
//                               the fractional-processor model is not
//                               load-bearing).
#pragma once

#include "simcore/scheduler.hpp"

namespace parsched {

class IsrptThreshold final : public Scheduler {
 public:
  /// theta >= 1: equipartition over all alive jobs whenever
  /// |A(t)| < theta*m, sequential-SRPT mode otherwise. theta = 1 is
  /// exactly Intermediate-SRPT.
  using Scheduler::allocate;
  explicit IsrptThreshold(double theta);
  [[nodiscard]] std::string name() const override;
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  double theta_;
};

class IsrptBoostShortest final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override {
    return "ISRPT-BoostShortest";
  }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
};

class QuantizedEqui final : public Scheduler {
 public:
  using Scheduler::allocate;
  explicit QuantizedEqui(double quantum);
  [[nodiscard]] std::string name() const override;
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
  void reset() override { round_ = 0; }

  // The only stateful policy: the round-robin cursor must survive serve/
  // session snapshots or the restored run would restart its slice
  // rotation and diverge from the unsnapshotted one.
  [[nodiscard]] std::string save_state() const override;
  void load_state(const std::string& state) override;

 private:
  double quantum_;
  std::uint64_t round_ = 0;
};

}  // namespace parsched
