// parsched — Parallel-SRPT.
//
// All m processors go to the single task with the least unprocessed work.
// Optimal (competitive ratio 1) when every job is fully parallelizable:
// the machine pool then behaves exactly like one speed-m processor, where
// SRPT minimizes total flow time. For any alpha < 1 it can be badly
// suboptimal — the ratio jumps to Theta(log P) the instant alpha < 1.
#pragma once

#include "simcore/scheduler.hpp"

namespace parsched {

class ParallelSrpt final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override { return "Parallel-SRPT"; }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
};

}  // namespace parsched
