// parsched — Intermediate-SRPT, the paper's main contribution.
//
// "If there are at least m tasks, the m tasks with the least unprocessed
//  work are each allocated one processor (this is like Sequential-SRPT).
//  If there are strictly fewer than m tasks, the processors are evenly
//  partitioned among the tasks (this is essentially Round Robin /
//  Processor Sharing)."
//
// Theorem 1: for jobs of intermediate parallelizability this policy is
// O(1) * 4^{1/(1-alpha)} * log P competitive for total flow time, where
// alpha = max_j alpha_j — and by Theorem 2 this is optimal up to the
// constant in front of log P.
#pragma once

#include "simcore/scheduler.hpp"

namespace parsched {

class IntermediateSrpt final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override {
    return "Intermediate-SRPT";
  }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;
};

}  // namespace parsched
