#include "sched/equi.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"

namespace parsched {

PARSCHED_HOT void Equi::allocate(const SchedulerContext& ctx, Allocation& out) {
  const std::size_t n = ctx.alive().size();
  out.reset(n);
  if (n == 0) return;
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(n);
  for (double& s : out.shares) s = share;
}

Laps::Laps(double beta) : beta_(beta) {
  if (beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("LAPS beta must be in (0, 1]");
  }
}

std::string Laps::name() const {
  std::ostringstream os;
  os << "LAPS(" << beta_ << ")";
  return os.str();
}

OldestEqui::OldestEqui(double beta) : beta_(beta) {
  if (beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("OldestEqui beta must be in (0, 1]");
  }
}

std::string OldestEqui::name() const {
  std::ostringstream os;
  os << "Oldest-EQUI(" << beta_ << ")";
  return os.str();
}

PARSCHED_HOT void OldestEqui::allocate(const SchedulerContext& ctx,
                                       Allocation& out) {
  const std::size_t n = ctx.alive().size();
  out.reset(n);
  if (n == 0) return;
  const auto k = static_cast<std::size_t>(
      std::ceil(beta_ * static_cast<double>(n)));
  const auto order = ctx.latest_arrivals(n);  // latest first
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(k);
  // Serve the k OLDEST: the tail of the latest-first order.
  for (std::size_t i = n - k; i < n; ++i) out.shares[order[i]] = share;
}

PARSCHED_HOT void Laps::allocate(const SchedulerContext& ctx, Allocation& out) {
  const std::size_t n = ctx.alive().size();
  out.reset(n);
  if (n == 0) return;
  const auto k = static_cast<std::size_t>(
      std::ceil(beta_ * static_cast<double>(n)));
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(k);
  for (std::size_t i : ctx.latest_arrivals(k)) out.shares[i] = share;
}

}  // namespace parsched
