#include "sched/equi.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace parsched {

Allocation Equi::allocate(const SchedulerContext& ctx) {
  const std::size_t n = ctx.alive().size();
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  if (n == 0) return alloc;
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(n);
  for (double& s : alloc.shares) s = share;
  return alloc;
}

Laps::Laps(double beta) : beta_(beta) {
  if (beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("LAPS beta must be in (0, 1]");
  }
}

std::string Laps::name() const {
  std::ostringstream os;
  os << "LAPS(" << beta_ << ")";
  return os.str();
}

OldestEqui::OldestEqui(double beta) : beta_(beta) {
  if (beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("OldestEqui beta must be in (0, 1]");
  }
}

std::string OldestEqui::name() const {
  std::ostringstream os;
  os << "Oldest-EQUI(" << beta_ << ")";
  return os.str();
}

Allocation OldestEqui::allocate(const SchedulerContext& ctx) {
  const std::size_t n = ctx.alive().size();
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  if (n == 0) return alloc;
  const auto k = static_cast<std::size_t>(
      std::ceil(beta_ * static_cast<double>(n)));
  auto order = ctx.latest_arrivals(n);  // latest first
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(k);
  // Serve the k OLDEST: the tail of the latest-first order.
  for (std::size_t i = n - k; i < n; ++i) alloc.shares[order[i]] = share;
  return alloc;
}

Allocation Laps::allocate(const SchedulerContext& ctx) {
  const std::size_t n = ctx.alive().size();
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  if (n == 0) return alloc;
  const auto k = static_cast<std::size_t>(
      std::ceil(beta_ * static_cast<double>(n)));
  const double share =
      static_cast<double>(ctx.machines()) / static_cast<double>(k);
  for (std::size_t i : ctx.latest_arrivals(k)) alloc.shares[i] = share;
  return alloc;
}

}  // namespace parsched
