#include "sched/registry.hpp"

#include <stdexcept>

#include "sched/equi.hpp"
#include "sched/greedy_hybrid.hpp"
#include "sched/intermediate_srpt.hpp"
#include "sched/nonclairvoyant.hpp"
#include "sched/parallel_srpt.hpp"
#include "sched/sequential_srpt.hpp"
#include "sched/variants.hpp"
#include "sched/weighted.hpp"

namespace parsched {

namespace {

/// Split "name:param" into name and optional numeric parameter.
std::pair<std::string, double> split_param(const std::string& spec,
                                           double fallback) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return {spec, fallback};
  return {spec.substr(0, colon), std::stod(spec.substr(colon + 1))};
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec) {
  if (spec == "isrpt") return std::make_unique<IntermediateSrpt>();
  if (spec == "seq-srpt") return std::make_unique<SequentialSrpt>();
  if (spec == "par-srpt") return std::make_unique<ParallelSrpt>();
  if (spec == "greedy") return std::make_unique<GreedyHybrid>();
  if (spec == "equi") return std::make_unique<Equi>();
  if (spec == "isrpt-boost") return std::make_unique<IsrptBoostShortest>();
  if (spec == "mlf") return std::make_unique<Mlf>();
  if (spec == "wisrpt") return std::make_unique<WeightedIsrpt>();
  const auto [name, param] = split_param(spec, -1.0);
  if (name == "laps") {
    return std::make_unique<Laps>(param > 0.0 ? param : 0.5);
  }
  if (name == "oldest-equi") {
    return std::make_unique<OldestEqui>(param > 0.0 ? param : 0.5);
  }
  if (name == "setf") {
    return std::make_unique<Setf>(param > 0.0 ? param : 0.1);
  }
  if (name == "isrpt-thresh") {
    return std::make_unique<IsrptThreshold>(param > 0.0 ? param : 2.0);
  }
  if (name == "quantized-equi") {
    return std::make_unique<QuantizedEqui>(param > 0.0 ? param : 0.25);
  }
  throw std::invalid_argument("unknown scheduler: " + spec);
}

std::vector<std::string> standard_policy_names() {
  return {"isrpt", "seq-srpt", "par-srpt", "greedy", "equi", "laps:0.5"};
}

}  // namespace parsched
