// parsched — weighted flow time: Weighted Intermediate-SRPT.
//
// The natural generalization of the paper's algorithm to the objective
// sum_j w_j (C_j - r_j): where Intermediate-SRPT serves the m jobs with
// least remaining work, WISRPT serves the m jobs with least *remaining
// work per unit weight* (the preemptive analogue of weighted SPT /
// highest-density-first); underloaded it equipartitions exactly like the
// paper's algorithm. With unit weights it coincides with
// Intermediate-SRPT decision-for-decision.
#pragma once

#include "simcore/instance.hpp"
#include "simcore/scheduler.hpp"

namespace parsched {

class WeightedIsrpt final : public Scheduler {
 public:
  using Scheduler::allocate;
  [[nodiscard]] std::string name() const override {
    return "Weighted-ISRPT";
  }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  std::vector<std::size_t> idx_;  // per-decision selection scratch
};

/// Provable lower bound on the optimal *weighted* flow time: each job
/// needs at least p_j / Γ_j(m) time even alone on all machines, so
/// OPT_w >= sum_j w_j p_j / Γ_j(m).
[[nodiscard]] double weighted_span_lower_bound(const Instance& instance);

}  // namespace parsched
