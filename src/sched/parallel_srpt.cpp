#include "sched/parallel_srpt.hpp"

namespace parsched {

Allocation ParallelSrpt::allocate(const SchedulerContext& ctx) {
  const std::size_t n = ctx.alive().size();
  Allocation alloc;
  alloc.shares.assign(n, 0.0);
  if (n == 0) return alloc;
  alloc.shares[ctx.min_remaining()] = static_cast<double>(ctx.machines());
  return alloc;
}

}  // namespace parsched
