#include "sched/parallel_srpt.hpp"

#include "check/contract.hpp"

namespace parsched {

PARSCHED_HOT void ParallelSrpt::allocate(const SchedulerContext& ctx,
                                         Allocation& out) {
  const std::size_t n = ctx.alive().size();
  out.reset(n);
  if (n == 0) return;
  out.shares[ctx.min_remaining()] = static_cast<double>(ctx.machines());
}

}  // namespace parsched
