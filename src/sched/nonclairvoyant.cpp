#include "sched/nonclairvoyant.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "check/contract.hpp"
#include "util/mathx.hpp"

namespace parsched {

namespace {

/// Work this job has received so far — directly observable by a
/// non-clairvoyant scheduler (it is the integral of its own decisions),
/// and equal to size - remaining.
double processed(const AliveJob& j) { return j.size - j.remaining; }

/// MLF level: processed in [2^k - 1, 2^{k+1} - 1)  <=>  k = floor(log2(p+1)).
int mlf_level(const AliveJob& j) {
  return static_cast<int>(std::floor(std::log2(processed(j) + 1.0)));
}

}  // namespace

Setf::Setf(double quantum) : quantum_(quantum) {
  if (!(quantum > 0.0)) throw std::invalid_argument("quantum must be > 0");
}

std::string Setf::name() const {
  std::ostringstream os;
  os << "SETF(q=" << quantum_ << ")";
  return os.str();
}

PARSCHED_HOT void Setf::allocate(const SchedulerContext& ctx, Allocation& out) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  if (n < m) {
    const double share =
        static_cast<double>(ctx.machines()) / static_cast<double>(n);
    for (double& s : out.shares) s = share;
    return;
  }
  idx_.resize(n);
  std::iota(idx_.begin(), idx_.end(), std::size_t{0});
  std::nth_element(idx_.begin(), idx_.begin() + static_cast<std::ptrdiff_t>(m),
                   idx_.end(), [&](std::size_t a, std::size_t b) {
                     const double pa = processed(alive[a]);
                     const double pb = processed(alive[b]);
                     if (pa != pb) return pa < pb;
                     return alive[a].arrival_seq < alive[b].arrival_seq;
                   });
  for (std::size_t k = 0; k < m; ++k) out.shares[idx_[k]] = 1.0;
  // Served jobs stop being the least-processed almost immediately; hold
  // the decision for one quantum (the realizable form of SETF).
  out.reconsider_at = ctx.time() + quantum_;
}

PARSCHED_HOT void Mlf::allocate(const SchedulerContext& ctx, Allocation& out) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  if (n < m) {
    const double share =
        static_cast<double>(ctx.machines()) / static_cast<double>(n);
    for (double& s : out.shares) s = share;
    return;
  }
  idx_.resize(n);
  std::iota(idx_.begin(), idx_.end(), std::size_t{0});
  std::sort(idx_.begin(), idx_.end(), [&](std::size_t a, std::size_t b) {
    const int la = mlf_level(alive[a]);
    const int lb = mlf_level(alive[b]);
    if (la != lb) return la < lb;
    return alive[a].arrival_seq < alive[b].arrival_seq;
  });
  double horizon = kInf;
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = idx_[k];
    out.shares[i] = 1.0;
    // A served job crosses into the next level when its processed work
    // reaches 2^{level+1} - 1; rate at share 1 is Γ(1) = 1, so the
    // crossing time is exact.
    const double threshold =
        std::exp2(mlf_level(alive[i]) + 1) - 1.0;
    const double dt = threshold - processed(alive[i]);
    if (dt > 1e-12) horizon = std::min(horizon, ctx.time() + dt);
  }
  out.reconsider_at = horizon;
}

}  // namespace parsched
