// parsched — explicit schedule plans.
//
// The paper's lower-bound proofs exhibit concrete feasible schedules (the
// Lemma-10 "alternative algorithm" and the Section-4 "standard schedule")
// and use their flow time as an upper bound on OPT. A Plan is exactly such
// a schedule: a set of (job, interval, share) segments. The executor
// verifies feasibility — at no instant may total allocated shares exceed m,
// and every job must receive its full work after its release — and returns
// the exact per-job completion times and total flow.
#pragma once

#include <vector>

#include "simcore/instance.hpp"
#include "simcore/result.hpp"

namespace parsched {

struct PlanSegment {
  JobId job = kInvalidJob;
  double t0 = 0.0;
  double t1 = 0.0;
  double share = 0.0;  ///< processors held throughout [t0, t1)
};

struct Plan {
  std::vector<PlanSegment> segments;

  void add(JobId job, double t0, double t1, double share) {
    segments.push_back({job, t0, t1, share});
  }
};

/// Thrown when a plan is infeasible (overcommits machines, schedules before
/// release, or fails to finish a job).
class InfeasiblePlan : public std::runtime_error {
 public:
  explicit InfeasiblePlan(const std::string& what);
};

/// Execute `plan` on `instance`. Completion of a job is the earliest time
/// its accumulated work (at rate Γ_j(share) per segment) reaches its size;
/// trailing over-allocation is allowed and ignored (the executor truncates
/// each job's processing at completion before checking machine usage).
/// `tol` controls both feasibility slack and work-completion slack.
[[nodiscard]] SimResult execute_plan(const Instance& instance,
                                     const Plan& plan, double tol = 1e-6);

}  // namespace parsched
