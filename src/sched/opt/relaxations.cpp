#include "sched/opt/relaxations.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/mathx.hpp"

namespace parsched {

double srpt_speed_m_lower_bound(const Instance& instance) {
  // Preemptive SRPT on one machine of speed m. Jobs sorted by release.
  const auto& jobs = instance.jobs();
  const double speed = static_cast<double>(instance.machines());
  // Multiset of remaining works of released, unfinished jobs.
  std::multiset<double> remaining;
  double total_flow = 0.0;
  double now = 0.0;
  std::size_t next = 0;
  const std::size_t n = jobs.size();
  while (next < n || !remaining.empty()) {
    if (remaining.empty()) {
      now = std::max(now, jobs[next].release);
      remaining.insert(jobs[next].size);
      ++next;
      // absorb simultaneous releases
      while (next < n && jobs[next].release <= now) {
        remaining.insert(jobs[next].size);
        ++next;
      }
      continue;
    }
    const double head = *remaining.begin();
    const double t_finish = now + head / speed;
    const double t_arrive = next < n ? jobs[next].release : kInf;
    // Flow accrues for all alive jobs during [now, t_next].
    if (t_finish <= t_arrive) {
      total_flow += static_cast<double>(remaining.size()) * (t_finish - now);
      now = t_finish;
      remaining.erase(remaining.begin());
    } else {
      total_flow += static_cast<double>(remaining.size()) * (t_arrive - now);
      const double processed = speed * (t_arrive - now);
      remaining.erase(remaining.begin());
      remaining.insert(head - processed);
      now = t_arrive;
      while (next < n && jobs[next].release <= now) {
        remaining.insert(jobs[next].size);
        ++next;
      }
    }
  }
  return total_flow;
}

double span_lower_bound(const Instance& instance) {
  double total = 0.0;
  const double m = static_cast<double>(instance.machines());
  for (const Job& j : instance.jobs()) {
    if (j.phases.empty()) {
      total += j.size / j.curve.rate(m);
    } else {
      // Multi-phase: running alone on all m machines still has to run the
      // phases in order, each at its own saturated rate.
      for (const JobPhase& p : j.phases) {
        total += p.work / p.curve.rate(m);
      }
    }
  }
  return total;
}

double opt_lower_bound(const Instance& instance) {
  return std::max(srpt_speed_m_lower_bound(instance),
                  span_lower_bound(instance));
}

}  // namespace parsched
