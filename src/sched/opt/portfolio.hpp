// parsched — portfolio upper bound on OPT.
//
// Any feasible schedule's total flow upper-bounds the optimum, so the best
// schedule found by running every policy in the registry (plus any
// instance-specific handcrafted plans the caller passes in) is a valid —
// and on the paper's adversarial instances, tight up to constants —
// estimate of OPT from above.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/opt/plan.hpp"
#include "simcore/instance.hpp"

namespace parsched {

struct PortfolioResult {
  double best_flow = 0.0;
  std::string best_name;
  std::map<std::string, double> flows;  ///< total flow per policy/plan
};

/// Run every standard policy on `instance`; additionally execute each named
/// plan in `plans`. Policies that throw (e.g. a plan found infeasible by
/// the executor, which would be a bug in the caller's construction) are
/// propagated, not swallowed.
[[nodiscard]] PortfolioResult run_portfolio(
    const Instance& instance,
    const std::vector<std::pair<std::string, Plan>>& plans = {},
    const std::vector<std::string>& policy_names = {});

/// Sandwich estimate of OPT for competitive-ratio reporting.
struct OptEstimate {
  double lower = 0.0;       ///< provable lower bound (relaxations)
  double upper = 0.0;       ///< best feasible schedule found
  std::string upper_name;   ///< which schedule achieved `upper`
};

[[nodiscard]] OptEstimate estimate_opt(
    const Instance& instance,
    const std::vector<std::pair<std::string, Plan>>& plans = {});

}  // namespace parsched
