// parsched — provable lower bounds on the optimal total flow time.
//
// The paper compares against an abstract offline OPT, which is not
// computable in general. We sandwich it:
//
//  * srpt_speed_m_lower_bound — replace every Γ_j by Γ'(x) = x (pointwise
//    no smaller, since all curves satisfy Γ(x) <= x by concavity and
//    Γ(1)=1). Any schedule only improves, so OPT of the relaxed instance
//    lower-bounds the true OPT. With fully parallelizable jobs the m unit
//    machines are equivalent to one speed-m machine, where preemptive SRPT
//    is *exactly* optimal for total flow time.
//
//  * span_lower_bound — no job can finish faster than running alone on all
//    m machines: F_j >= p_j / Γ_j(m).
//
//  * opt_lower_bound — the max of the two (both are valid bounds).
//
// Upper bounds on OPT come from feasible schedules: see portfolio.hpp and
// plan.hpp.
#pragma once

#include "simcore/instance.hpp"

namespace parsched {

/// Total flow time of preemptive SRPT on a single machine of speed m
/// (exactly optimal for the fully-parallel relaxation). Exact event-driven
/// computation, O(n log n).
[[nodiscard]] double srpt_speed_m_lower_bound(const Instance& instance);

/// Sum over jobs of p_j / Γ_j(m).
[[nodiscard]] double span_lower_bound(const Instance& instance);

/// max of all implemented lower bounds.
[[nodiscard]] double opt_lower_bound(const Instance& instance);

}  // namespace parsched
