#include "sched/opt/plan.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "util/mathx.hpp"

namespace parsched {

InfeasiblePlan::InfeasiblePlan(const std::string& what)
    : std::runtime_error("infeasible plan: " + what) {}

namespace {

std::string describe(const PlanSegment& s) {
  std::ostringstream os;
  os << "job " << s.job << " on [" << s.t0 << ", " << s.t1 << ") share "
     << s.share;
  return os.str();
}

}  // namespace

SimResult execute_plan(const Instance& instance, const Plan& plan,
                       double tol) {
  std::map<JobId, const Job*> by_id;
  for (const Job& j : instance.jobs()) {
    if (!j.phases.empty()) {
      throw InfeasiblePlan("plans do not support multi-phase jobs");
    }
    by_id[j.id] = &j;
  }

  std::map<JobId, std::vector<PlanSegment>> per_job;
  for (const PlanSegment& s : plan.segments) {
    if (!by_id.count(s.job)) {
      throw InfeasiblePlan("segment for unknown " + describe(s));
    }
    if (s.t1 <= s.t0) throw InfeasiblePlan("empty segment " + describe(s));
    if (s.share <= 0.0) throw InfeasiblePlan("zero share " + describe(s));
    per_job[s.job].push_back(s);
  }

  SimResult result;
  std::vector<PlanSegment> truncated;  // post-completion processing removed

  for (auto& [id, segs] : per_job) {
    const Job& job = *by_id.at(id);
    std::sort(segs.begin(), segs.end(),
              [](const PlanSegment& a, const PlanSegment& b) {
                return a.t0 < b.t0;
              });
    double work = 0.0;
    double completion = -1.0;
    double frac_integral = 0.0;  // integral of remaining(t) from release
    double prev_end = job.release;
    for (const PlanSegment& s : segs) {
      if (s.t0 < job.release - tol) {
        throw InfeasiblePlan("segment before release: " + describe(s));
      }
      if (s.t0 < prev_end - tol) {
        throw InfeasiblePlan("overlapping segments for job " +
                             std::to_string(id));
      }
      // Idle gap before this segment: remaining constant.
      frac_integral += (job.size - work) * std::max(0.0, s.t0 - prev_end);
      const double rate = job.curve.rate(s.share);
      const double seg_len = s.t1 - s.t0;
      const double seg_work = rate * seg_len;
      if (work + seg_work >= job.size - tol * std::max(1.0, job.size)) {
        // Completes inside this segment.
        const double need = std::max(0.0, job.size - work);
        const double t_done = s.t0 + (rate > 0.0 ? need / rate : 0.0);
        frac_integral +=
            0.5 * ((job.size - work) + 0.0) * (t_done - s.t0);
        completion = t_done;
        truncated.push_back({s.job, s.t0, t_done, s.share});
        work = job.size;
        break;
      }
      const double before = job.size - work;
      work += seg_work;
      const double after = job.size - work;
      frac_integral += 0.5 * (before + after) * seg_len;
      truncated.push_back(s);
      prev_end = s.t1;
    }
    if (completion < 0.0) {
      std::ostringstream os;
      os << "job " << id << " receives only " << work << " of " << job.size
         << " units of work";
      throw InfeasiblePlan(os.str());
    }
    JobRecord rec;
    rec.job = job;
    rec.completion = completion;
    result.total_flow += rec.flow();
    result.fractional_flow += frac_integral / job.size;
    result.makespan = std::max(result.makespan, completion);
    result.records.push_back(rec);
  }

  if (result.records.size() != instance.size()) {
    throw InfeasiblePlan("some jobs have no segments");
  }

  // Machine-capacity sweep over the truncated segments.
  std::vector<std::pair<double, double>> deltas;  // (time, +-share)
  deltas.reserve(2 * truncated.size());
  for (const PlanSegment& s : truncated) {
    deltas.emplace_back(s.t0, s.share);
    deltas.emplace_back(s.t1, -s.share);
  }
  std::sort(deltas.begin(), deltas.end());
  double usage = 0.0;
  const double cap = static_cast<double>(instance.machines());
  std::size_t i = 0;
  while (i < deltas.size()) {
    const double t = deltas[i].first;
    // Apply all deltas at (approximately) the same instant, negatives
    // first is unnecessary since sort puts -share before +share at equal t.
    while (i < deltas.size() && deltas[i].first <= t + 1e-12) {
      usage += deltas[i].second;
      ++i;
    }
    if (usage > cap + tol * std::max(1.0, cap)) {
      std::ostringstream os;
      os << "machine overcommit at t=" << t << ": usage " << usage << " > m="
         << cap;
      throw InfeasiblePlan(os.str());
    }
  }

  std::sort(result.records.begin(), result.records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.completion < b.completion;
            });
  result.events = 2 * result.records.size();
  return result;
}

}  // namespace parsched
