// parsched — local-search upper bounds on OPT.
//
// The portfolio (fixed policies + handcrafted plans) can leave a gap to
// the true optimum. For small instances we tighten the feasible side of
// the sandwich by searching the space of *priority-list schedules*: fix a
// total order on jobs; at every decision point the alive jobs take
// machines in that order (one each; any leftovers are split evenly among
// the alive jobs). SRPT-style, FIFO and size-ordered schedules are all
// priority-list schedules for suitable (dynamic) orders, and hill-climbing
// the static order with pairwise swaps reliably beats the best fixed
// policy on batch instances.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/instance.hpp"
#include "simcore/scheduler.hpp"

namespace parsched {

/// Serve alive jobs in the fixed priority order `order` (a permutation of
/// job ids; earlier = higher priority): one machine per job down the
/// order, leftovers split evenly among all alive jobs.
class PriorityListScheduler final : public Scheduler {
 public:
  using Scheduler::allocate;
  explicit PriorityListScheduler(std::vector<JobId> order);
  [[nodiscard]] std::string name() const override {
    return "Priority-List";
  }
  void allocate(const SchedulerContext& ctx, Allocation& out) override;

 private:
  std::vector<std::uint32_t> rank_;  // job id -> priority rank
  std::vector<std::size_t> idx_;     // per-decision sort scratch
};

struct SearchResult {
  double best_flow = 0.0;
  std::vector<JobId> best_order;
  int evaluations = 0;
};

/// Hill-climb priority orders with pairwise swaps, restarting from a few
/// natural seeds (by size, by release, random shuffles). `budget` bounds
/// the number of schedule evaluations (each is one simulation).
[[nodiscard]] SearchResult local_search_opt(const Instance& instance,
                                            int budget = 2000,
                                            std::uint64_t seed = 1);

}  // namespace parsched
