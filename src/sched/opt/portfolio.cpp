#include "sched/opt/portfolio.hpp"

#include <limits>

#include "sched/opt/relaxations.hpp"
#include "sched/registry.hpp"
#include "simcore/engine.hpp"

namespace parsched {

PortfolioResult run_portfolio(
    const Instance& instance,
    const std::vector<std::pair<std::string, Plan>>& plans,
    const std::vector<std::string>& policy_names) {
  PortfolioResult out;
  out.best_flow = std::numeric_limits<double>::infinity();

  const std::vector<std::string> names =
      policy_names.empty() ? standard_policy_names() : policy_names;
  for (const std::string& name : names) {
    auto sched = make_scheduler(name);
    const SimResult r = simulate(instance, *sched);
    out.flows[sched->name()] = r.total_flow;
    if (r.total_flow < out.best_flow) {
      out.best_flow = r.total_flow;
      out.best_name = sched->name();
    }
  }
  for (const auto& [name, plan] : plans) {
    const SimResult r = execute_plan(instance, plan);
    out.flows[name] = r.total_flow;
    if (r.total_flow < out.best_flow) {
      out.best_flow = r.total_flow;
      out.best_name = name;
    }
  }
  return out;
}

OptEstimate estimate_opt(
    const Instance& instance,
    const std::vector<std::pair<std::string, Plan>>& plans) {
  OptEstimate est;
  est.lower = opt_lower_bound(instance);
  const PortfolioResult pf = run_portfolio(instance, plans);
  est.upper = pf.best_flow;
  est.upper_name = pf.best_name;
  return est;
}

}  // namespace parsched
