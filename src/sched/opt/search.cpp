#include "sched/opt/search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <stdexcept>

#include "check/contract.hpp"
#include "simcore/engine.hpp"
#include "util/rng.hpp"

namespace parsched {

PriorityListScheduler::PriorityListScheduler(std::vector<JobId> order) {
  JobId max_id = 0;
  for (JobId id : order) max_id = std::max(max_id, id);
  rank_.assign(max_id + 1, std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (rank_[order[i]] != std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("duplicate job id in priority order");
    }
    rank_[order[i]] = i;
  }
}

PARSCHED_HOT void PriorityListScheduler::allocate(const SchedulerContext& ctx,
                                     Allocation& out) {
  const auto alive = ctx.alive();
  const std::size_t n = alive.size();
  const auto m = static_cast<std::size_t>(ctx.machines());
  out.reset(n);
  if (n == 0) return;
  idx_.resize(n);
  std::iota(idx_.begin(), idx_.end(), std::size_t{0});
  std::sort(idx_.begin(), idx_.end(), [&](std::size_t a, std::size_t b) {
    const JobId ia = alive[a].id;
    const JobId ib = alive[b].id;
    const auto ra = ia < rank_.size()
                        ? rank_[ia]
                        : std::numeric_limits<std::uint32_t>::max();
    const auto rb = ib < rank_.size()
                        ? rank_[ib]
                        : std::numeric_limits<std::uint32_t>::max();
    if (ra != rb) return ra < rb;
    return ia < ib;
  });
  if (n >= m) {
    for (std::size_t k = 0; k < m; ++k) out.shares[idx_[k]] = 1.0;
  } else {
    // One each, leftovers split evenly (keeps the schedule work-
    // conserving without concentrating on a single job).
    const double extra =
        static_cast<double>(m - n) / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) out.shares[idx_[k]] = 1.0 + extra;
  }
}

namespace {

double evaluate(const Instance& instance, const std::vector<JobId>& order) {
  PriorityListScheduler sched(order);
  return simulate(instance, sched).total_flow;
}

}  // namespace

SearchResult local_search_opt(const Instance& instance, int budget,
                              std::uint64_t seed) {
  const auto& jobs = instance.jobs();
  SearchResult result;
  result.best_flow = std::numeric_limits<double>::infinity();

  std::vector<std::vector<JobId>> seeds;
  {
    std::unordered_map<JobId, const Job*> by_id;
    std::vector<JobId> ids;
    for (const Job& j : jobs) {
      by_id[j.id] = &j;
      ids.push_back(j.id);
    }
    std::vector<JobId> by_size = ids;
    std::sort(by_size.begin(), by_size.end(), [&](JobId a, JobId b) {
      return by_id.at(a)->size < by_id.at(b)->size;
    });
    std::vector<JobId> by_release = ids;
    std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
      return by_id.at(a)->release < by_id.at(b)->release;
    });
    seeds.push_back(std::move(by_size));
    seeds.push_back(std::move(by_release));
  }
  Rng rng(seed);
  {
    std::vector<JobId> shuffled = seeds.front();
    for (int r = 0; r < 2; ++r) {
      for (std::size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
      }
      seeds.push_back(shuffled);
    }
  }

  for (const auto& start : seeds) {
    std::vector<JobId> order = start;
    double flow = evaluate(instance, order);
    ++result.evaluations;
    bool improved = true;
    while (improved && result.evaluations < budget) {
      improved = false;
      for (std::size_t i = 0;
           i + 1 < order.size() && result.evaluations < budget; ++i) {
        std::swap(order[i], order[i + 1]);
        const double f = evaluate(instance, order);
        ++result.evaluations;
        if (f < flow - 1e-12) {
          flow = f;
          improved = true;
        } else {
          std::swap(order[i], order[i + 1]);  // revert
        }
      }
    }
    if (flow < result.best_flow) {
      result.best_flow = flow;
      result.best_order = order;
    }
    if (result.evaluations >= budget) break;
  }
  return result;
}

}  // namespace parsched
